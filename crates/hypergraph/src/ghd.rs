//! Generalized hypertree decompositions (Definition 2.4), the GYO-GHD of
//! Construction 2.8, and the MD-GHD hoisting of Construction F.6.

use crate::gyo::{gyo, Decomposition};
use crate::hypergraph::{intersect, is_subset, EdgeId, Hypergraph, Var};
use std::collections::BTreeSet;

/// Identifier of a GHD tree node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One node (bag) of a GHD.
#[derive(Clone, Debug)]
pub struct GhdNode {
    /// The bag `χ(v) ⊆ V` (sorted).
    pub chi: Vec<Var>,
    /// The cover `λ(v) ⊆ E`: hyperedges for which this is the canonical
    /// covering node.
    pub lambda: Vec<EdgeId>,
    /// Parent in the rooted tree (`None` for the root).
    pub parent: Option<NodeId>,
}

/// Validation failure for a candidate GHD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GhdValidationError {
    /// Some hyperedge has no node with `e ⊆ χ(v)` and `e ∈ λ(v)`.
    EdgeNotCovered(EdgeId),
    /// A variable's occurrence set is not connected in the tree (running
    /// intersection property violated).
    RipViolation(Var),
    /// `λ(v)` lists an edge not contained in `χ(v)`.
    LambdaNotContained(NodeId, EdgeId),
    /// The parent pointers do not form a single rooted tree.
    NotATree,
}

impl std::fmt::Display for GhdValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GhdValidationError::EdgeNotCovered(e) => write!(f, "edge {e} not covered by any bag"),
            GhdValidationError::RipViolation(v) => {
                write!(f, "running intersection property violated for {v}")
            }
            GhdValidationError::LambdaNotContained(n, e) => {
                write!(f, "λ of node {} lists {e} not contained in its bag", n.0)
            }
            GhdValidationError::NotATree => write!(f, "parent pointers do not form a tree"),
        }
    }
}

impl std::error::Error for GhdValidationError {}

/// A rooted generalized hypertree decomposition `⟨T, χ, λ⟩` of a
/// hypergraph (Definition 2.4).
///
/// Unless stated otherwise, decompositions produced by this crate are
/// **GYO-GHDs** in the paper's sense: outputs of Construction 2.8, with
/// the core `C(H)` at the root. The paper's width `y(T)` is
/// [`Ghd::internal_count`]; minimizing it over GYO-GHDs gives `y(H)`
/// (Definition 2.9), computed in [`crate::width`].
#[derive(Clone, Debug)]
pub struct Ghd {
    nodes: Vec<GhdNode>,
    root: NodeId,
    alive: Vec<bool>,
}

impl Ghd {
    /// Builds a GHD from explicit nodes; `nodes[root]` must have no parent.
    pub fn from_nodes(nodes: Vec<GhdNode>, root: NodeId) -> Self {
        let alive = vec![true; nodes.len()];
        Ghd { nodes, root, alive }
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of live nodes.
    pub fn len(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Whether the decomposition has no live nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether node `n` is still live (not peeled away).
    #[inline]
    pub fn is_alive(&self, n: NodeId) -> bool {
        self.alive[n.index()]
    }

    /// Immutable access to a node.
    #[inline]
    pub fn node(&self, n: NodeId) -> &GhdNode {
        &self.nodes[n.index()]
    }

    /// The bag `χ(v)`.
    #[inline]
    pub fn chi(&self, n: NodeId) -> &[Var] {
        &self.nodes[n.index()].chi
    }

    /// All live node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len())
            .map(|i| NodeId(i as u32))
            .filter(move |n| self.alive[n.index()])
    }

    /// Live children of `n`.
    pub fn children(&self, n: NodeId) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&c| self.nodes[c.index()].parent == Some(n))
            .collect()
    }

    /// Live parent of `n`.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].parent
    }

    /// Whether `n` is an internal (non-leaf) live node.
    pub fn is_internal(&self, n: NodeId) -> bool {
        self.node_ids()
            .any(|c| self.nodes[c.index()].parent == Some(n))
    }

    /// The number of internal nodes `y(T)` (Definition 2.9).
    pub fn internal_count(&self) -> usize {
        let mut has_child = vec![false; self.nodes.len()];
        for n in self.node_ids() {
            if let Some(p) = self.nodes[n.index()].parent {
                has_child[p.index()] = true;
            }
        }
        self.node_ids().filter(|n| has_child[n.index()]).count()
    }

    /// The canonical covering node of edge `e`, if any.
    pub fn edge_node(&self, e: EdgeId) -> Option<NodeId> {
        self.node_ids()
            .find(|n| self.nodes[n.index()].lambda.contains(&e))
    }

    /// Live nodes in post-order (children before parents) — the
    /// bottom-up processing order of the forest protocol.
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.len());
        let mut stack = vec![(self.root, false)];
        while let Some((n, expanded)) = stack.pop() {
            if !self.alive[n.index()] {
                continue;
            }
            if expanded {
                order.push(n);
            } else {
                stack.push((n, true));
                for c in self.children(n) {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// Depth of node `n` (root = 0), following live parent chain.
    pub fn depth(&self, n: NodeId) -> usize {
        let mut d = 0;
        let mut cur = n;
        while let Some(p) = self.nodes[cur.index()].parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Strict ancestors of `n`, nearest first, ending at the root.
    pub fn ancestors(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = n;
        while let Some(p) = self.nodes[cur.index()].parent {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Validates the decomposition against `h` per Definition 2.4:
    /// coverage (`∀e ∃v: e ⊆ χ(v), e ∈ λ(v)`), λ-containment, the running
    /// intersection property, and tree shape.
    pub fn validate(&self, h: &Hypergraph) -> Result<(), GhdValidationError> {
        // Tree shape: every live node reaches the root without cycles.
        for n in self.node_ids() {
            let mut seen = BTreeSet::new();
            let mut cur = n;
            loop {
                if !seen.insert(cur) {
                    return Err(GhdValidationError::NotATree);
                }
                match self.nodes[cur.index()].parent {
                    Some(p) => {
                        if !self.alive[p.index()] {
                            return Err(GhdValidationError::NotATree);
                        }
                        cur = p;
                    }
                    None => break,
                }
            }
            if cur != self.root {
                return Err(GhdValidationError::NotATree);
            }
        }

        // λ containment + coverage.
        for n in self.node_ids() {
            for &e in &self.nodes[n.index()].lambda {
                if !is_subset(h.edge(e), &self.nodes[n.index()].chi) {
                    return Err(GhdValidationError::LambdaNotContained(n, e));
                }
            }
        }
        for (e, _) in h.edges() {
            let covered = self.node_ids().any(|n| {
                self.nodes[n.index()].lambda.contains(&e)
                    && is_subset(h.edge(e), &self.nodes[n.index()].chi)
            });
            if !covered {
                return Err(GhdValidationError::EdgeNotCovered(e));
            }
        }

        // RIP: for every variable, the set of bags containing it induces a
        // connected subtree. Checked by counting connected components via
        // parent links restricted to occurrence nodes.
        for v in h.vars() {
            let occ: Vec<NodeId> = self
                .node_ids()
                .filter(|n| self.nodes[n.index()].chi.binary_search(&v).is_ok())
                .collect();
            if occ.len() <= 1 {
                continue;
            }
            let occ_set: BTreeSet<NodeId> = occ.iter().copied().collect();
            // A node is a component root if its parent is not an occurrence.
            let roots = occ
                .iter()
                .filter(|n| {
                    self.nodes[n.index()]
                        .parent
                        .map(|p| !occ_set.contains(&p))
                        .unwrap_or(true)
                })
                .count();
            if roots != 1 {
                return Err(GhdValidationError::RipViolation(v));
            }
        }
        Ok(())
    }

    /// **Construction 2.8 (GYO-GHD).** Runs GYO, puts the core `C(H)` in
    /// the root bag, creates one child per edge contained in `V(C(H))`,
    /// and attaches the remaining removed forest following its join-forest
    /// parent structure.
    ///
    /// If a single edge's vertex set equals `V(C(H))` the synthetic root
    /// is merged with that edge's node (this is how the paper's Figure 2
    /// decomposition `T1` arises with root `(A,B,C)`).
    pub fn gyo_ghd(h: &Hypergraph) -> Ghd {
        let trace = gyo(h);
        let decomp = Decomposition::from_trace(h, &trace);
        Self::from_decomposition(h, &decomp)
    }

    /// Materialises Construction 2.8 for a given core/forest decomposition
    /// (possibly re-rooted via [`Decomposition::reroot`]).
    pub fn from_decomposition(h: &Hypergraph, decomp: &Decomposition) -> Ghd {
        let core_vars: Vec<Var> = decomp.core_vars.iter().copied().collect();

        let mut nodes: Vec<GhdNode> = Vec::with_capacity(h.num_edges() + 1);
        let root = NodeId(0);

        // Merge the root with an edge that exactly matches V(C(H)).
        let merged: Option<EdgeId> = h
            .edges()
            .find(|(_, e)| *e == core_vars.as_slice())
            .map(|(id, _)| id);
        nodes.push(GhdNode {
            chi: core_vars.clone(),
            lambda: merged.into_iter().collect(),
            parent: None,
        });

        let mut node_of_edge: Vec<Option<NodeId>> = vec![None; h.num_edges()];
        if let Some(e) = merged {
            node_of_edge[e.index()] = Some(root);
        }

        // Children for every edge contained in V(C(H)).
        for (e, vars) in h.edges() {
            if Some(e) == merged {
                continue;
            }
            if is_subset(vars, &core_vars) {
                let id = NodeId(nodes.len() as u32);
                nodes.push(GhdNode {
                    chi: vars.to_vec(),
                    lambda: vec![e],
                    parent: Some(root),
                });
                node_of_edge[e.index()] = Some(id);
            }
        }

        // Remaining forest edges: attach along join-forest parents, placed
        // top-down (BFS from already-placed nodes) so every parent exists
        // before its children.
        let mut pending: Vec<EdgeId> = decomp
            .forest_edges
            .iter()
            .copied()
            .filter(|e| node_of_edge[e.index()].is_none())
            .collect();
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|&e| {
                let parent_node = match decomp.forest_parent[e.index()] {
                    Some(p) => node_of_edge[p.index()],
                    // A forest root not contained in V(C(H)) cannot occur
                    // (its vertices are in the core by definition), but
                    // fall back to the root defensively.
                    None => Some(root),
                };
                match parent_node {
                    Some(pn) => {
                        let id = NodeId(nodes.len() as u32);
                        nodes.push(GhdNode {
                            chi: h.edge(e).to_vec(),
                            lambda: vec![e],
                            parent: Some(pn),
                        });
                        node_of_edge[e.index()] = Some(id);
                        false
                    }
                    None => true,
                }
            });
            assert!(
                pending.len() < before,
                "forest parent structure contains a cycle"
            );
        }

        Ghd::from_nodes(nodes, root)
    }

    /// **Construction F.6 (MD-GHD).** Repeatedly reattaches a node `v`
    /// from its parent `u` to the *topmost* strict ancestor `w` of `u`
    /// with `χ(v) ∩ χ(u) ⊆ χ(w)`. This preserves GHD validity (the shared
    /// variables lie on the whole `u..w` path by RIP) and can only turn
    /// internal nodes into leaves, so it never increases `y(T)`.
    ///
    /// Terminates because every reattachment strictly decreases the total
    /// node depth (cf. Corollary F.7's step bound).
    pub fn hoist_md(&mut self) {
        loop {
            let mut changed = false;
            for v in self.node_ids().collect::<Vec<_>>() {
                let Some(u) = self.nodes[v.index()].parent else {
                    continue;
                };
                let shared = intersect(&self.nodes[v.index()].chi, &self.nodes[u.index()].chi);
                // Topmost ancestor of u whose bag contains the shared vars.
                // Topmost qualifying ancestor (nearest-first list).
                let target = self
                    .ancestors(u)
                    .into_iter()
                    .rfind(|w| is_subset(&shared, &self.nodes[w.index()].chi));
                if let Some(w) = target {
                    self.nodes[v.index()].parent = Some(w);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Finds the deepest *pendant star*: an internal node all of whose
    /// children are leaves. Returns `(center, leaves)` without modifying
    /// the tree. This is the unit of work of the forest protocol
    /// (Lemma 4.1 / F.1): each peel consumes one internal node, so the
    /// total number of peels is `y(T)`.
    pub fn lowest_star(&self) -> Option<(NodeId, Vec<NodeId>)> {
        let mut best: Option<(usize, NodeId)> = None;
        for n in self.node_ids() {
            let ch = self.children(n);
            if ch.is_empty() {
                continue;
            }
            if ch.iter().all(|c| self.children(*c).is_empty()) {
                let d = self.depth(n);
                if best.map(|(bd, _)| d > bd).unwrap_or(true) {
                    best = Some((d, n));
                }
            }
        }
        best.map(|(_, n)| (n, self.children(n)))
    }

    /// Removes (marks dead) the given leaves — used after a star peel.
    pub fn remove_leaves(&mut self, leaves: &[NodeId]) {
        for &l in leaves {
            assert!(
                self.children(l).is_empty(),
                "can only remove leaf nodes, {l:?} has children"
            );
            self.alive[l.index()] = false;
        }
    }

    /// Variables appearing in the live subtree rooted at `n`.
    pub fn subtree_vars(&self, n: NodeId) -> BTreeSet<Var> {
        let mut out: BTreeSet<Var> = BTreeSet::new();
        let mut stack = vec![n];
        while let Some(cur) = stack.pop() {
            out.extend(self.nodes[cur.index()].chi.iter().copied());
            stack.extend(self.children(cur));
        }
        out
    }

    /// **Lemma F.3.** For every internal node `u` (bottom-up, synthetic
    /// roots excluded), finds a variable `p` in `χ(u) ∩ χ(c)` for some
    /// child `c` such that `p` occurs in no bag outside the subtree of
    /// `u`. Returns `(internal node, witness child, private variable)`
    /// triples; used by the TRIBES embedding of Theorem F.8.
    pub fn private_pairs(&self) -> Vec<(NodeId, NodeId, Var)> {
        let mut out = Vec::new();
        for u in self.post_order() {
            let ch = self.children(u);
            if ch.is_empty() {
                continue;
            }
            // Variables in bags outside subtree(u).
            let inside = self.subtree_vars(u);
            let mut outside: BTreeSet<Var> = BTreeSet::new();
            for n in self.node_ids() {
                if !self.in_subtree(n, u) {
                    outside.extend(self.nodes[n.index()].chi.iter().copied());
                }
            }
            let _ = inside;
            'child: for c in ch {
                let shared = intersect(&self.nodes[u.index()].chi, &self.nodes[c.index()].chi);
                for p in shared {
                    if !outside.contains(&p) {
                        out.push((u, c, p));
                        break 'child;
                    }
                }
            }
        }
        out
    }

    /// Whether `n` lies in the subtree rooted at `a` (inclusive).
    pub fn in_subtree(&self, n: NodeId, a: NodeId) -> bool {
        let mut cur = n;
        loop {
            if cur == a {
                return true;
            }
            match self.nodes[cur.index()].parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{
        clique_query, cycle_query, example_h1, example_h2, example_h3, path_query, star_query,
        tree_query,
    };

    fn check(h: &Hypergraph) -> Ghd {
        let g = Ghd::gyo_ghd(h);
        g.validate(h).expect("construction 2.8 yields a valid GHD");
        g
    }

    #[test]
    fn star_ghd_has_width_one_after_hoisting() {
        let h = example_h1(); // star on A with leaves B,C,D,E
        let mut g = check(&h);
        g.hoist_md();
        g.validate(&h).unwrap();
        assert_eq!(g.internal_count(), 1, "paper: y(H1) = 1");
    }

    #[test]
    fn h2_ghd_has_width_one_after_hoisting() {
        let h = example_h2();
        let mut g = check(&h);
        g.hoist_md();
        g.validate(&h).unwrap();
        assert_eq!(g.internal_count(), 1, "paper: y(H2) = 1 via T1 of Fig 2");
    }

    #[test]
    fn h3_ghd_valid_and_hoists_to_two_internals() {
        let h = example_h3();
        let mut g = check(&h);
        g.hoist_md();
        g.validate(&h).unwrap();
        // Appendix C.2's first sample GYO-GHD has 2 internal nodes (r' and
        // e6); G and H are private to e6's subtree so e6 stays internal.
        assert_eq!(g.internal_count(), 2);
    }

    #[test]
    fn path_ghd_is_chainlike() {
        let h = path_query(6);
        let mut g = check(&h);
        g.hoist_md();
        g.validate(&h).unwrap();
        // A path of 6 edges: interior vertices force a chain; hoisting
        // cannot flatten it below ~k-2 internal nodes.
        assert!(g.internal_count() >= 4);
    }

    #[test]
    fn clique_ghd_is_flat() {
        let h = clique_query(5);
        let g = check(&h);
        // Core = everything: root bag covers all vertices, all edges hang
        // off it as leaves.
        assert_eq!(g.internal_count(), 1);
        assert_eq!(g.len(), h.num_edges() + 1);
    }

    #[test]
    fn cycle_ghd_is_flat() {
        let h = cycle_query(5);
        let g = check(&h);
        assert_eq!(g.internal_count(), 1);
    }

    #[test]
    fn tree_query_ghd_valid() {
        let h = tree_query(3, 3); // depth-3 ternary tree
        let mut g = check(&h);
        g.hoist_md();
        g.validate(&h).unwrap();
    }

    #[test]
    fn post_order_visits_children_first() {
        let h = example_h3();
        let g = check(&h);
        let order = g.post_order();
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in g.node_ids() {
            if let Some(p) = g.parent(n) {
                assert!(pos[&n] < pos[&p], "child before parent");
            }
        }
        assert_eq!(*order.last().unwrap(), g.root());
    }

    #[test]
    fn peel_stars_consumes_internal_nodes() {
        let h = path_query(6);
        let mut g = check(&h);
        g.hoist_md();
        let y = g.internal_count();
        let mut peels = 0;
        while let Some((_, leaves)) = g.lowest_star() {
            g.remove_leaves(&leaves);
            peels += 1;
            if g.len() == 1 {
                break;
            }
        }
        assert_eq!(peels, y, "one peel per internal node");
    }

    #[test]
    fn private_pairs_exist_for_star() {
        let h = star_query(4);
        let mut g = check(&h);
        g.hoist_md();
        let pairs = g.private_pairs();
        // The single internal node must expose a private variable.
        assert_eq!(pairs.len(), g.internal_count());
    }

    #[test]
    fn validation_catches_rip_violation() {
        // Bags {0,1}, {2}, {0,3} in a chain: variable 0 occurs at both
        // ends but not in the middle.
        let mut h = Hypergraph::new(4);
        h.add_edge([Var(0), Var(1)]);
        h.add_edge([Var(2)]);
        h.add_edge([Var(0), Var(3)]);
        let nodes = vec![
            GhdNode {
                chi: vec![Var(0), Var(1)],
                lambda: vec![EdgeId(0)],
                parent: None,
            },
            GhdNode {
                chi: vec![Var(2)],
                lambda: vec![EdgeId(1)],
                parent: Some(NodeId(0)),
            },
            GhdNode {
                chi: vec![Var(0), Var(3)],
                lambda: vec![EdgeId(2)],
                parent: Some(NodeId(1)),
            },
        ];
        let g = Ghd::from_nodes(nodes, NodeId(0));
        assert_eq!(
            g.validate(&h),
            Err(GhdValidationError::RipViolation(Var(0)))
        );
    }

    #[test]
    fn validation_catches_uncovered_edge() {
        let mut h = Hypergraph::new(2);
        h.add_edge([Var(0), Var(1)]);
        let nodes = vec![GhdNode {
            chi: vec![Var(0)],
            lambda: vec![],
            parent: None,
        }];
        let g = Ghd::from_nodes(nodes, NodeId(0));
        assert_eq!(
            g.validate(&h),
            Err(GhdValidationError::EdgeNotCovered(EdgeId(0)))
        );
    }
}
