//! A simple-graph view of arity-≤2 query hypergraphs, used by the
//! Section 4 machinery (bipartition, rooted forests, short cycles).

use crate::hypergraph::{EdgeId, Hypergraph, Var};
use std::collections::{BTreeSet, VecDeque};

/// An undirected simple graph over the hypergraph's variables.
///
/// Self-loop hyperedges (arity 1) are tracked separately: they carry
/// relations (the toy query `H0`) but play no role in graph-theoretic
/// structure.
#[derive(Clone, Debug)]
pub struct SimpleGraph {
    n: usize,
    adj: Vec<Vec<(Var, EdgeId)>>,
    loops: Vec<(Var, EdgeId)>,
}

impl SimpleGraph {
    /// Builds the view; `None` if some edge has arity > 2.
    pub fn from_hypergraph(h: &Hypergraph) -> Option<Self> {
        if h.arity() > 2 {
            return None;
        }
        let n = h.num_vars();
        let mut adj = vec![Vec::new(); n];
        let mut loops = Vec::new();
        for (id, e) in h.edges() {
            match e {
                [v] => loops.push((*v, id)),
                [u, v] => {
                    adj[u.index()].push((*v, id));
                    adj[v.index()].push((*u, id));
                }
                _ => unreachable!("arity checked above"),
            }
        }
        Some(SimpleGraph { n, adj, loops })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Neighbours of `v` with the connecting edge ids.
    pub fn neighbors(&self, v: Var) -> &[(Var, EdgeId)] {
        &self.adj[v.index()]
    }

    /// Graph degree of `v` (self-loops excluded).
    pub fn degree(&self, v: Var) -> usize {
        self.adj[v.index()].len()
    }

    /// Self-loop hyperedges `(vertex, edge)`.
    pub fn self_loops(&self) -> &[(Var, EdgeId)] {
        &self.loops
    }

    /// Number of non-loop edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Whether the (non-loop part of the) graph is a forest.
    pub fn is_forest(&self) -> bool {
        // |E| = |V_used| - #components  ⇔  forest
        let comps = self.components();
        let used: usize = comps.iter().map(Vec::len).sum();
        let c = comps.len();
        self.num_edges() == used.saturating_sub(c)
    }

    /// Connected components over vertices with at least one incident
    /// (non-loop) edge.
    pub fn components(&self) -> Vec<Vec<Var>> {
        let mut seen = vec![false; self.n];
        let mut out = Vec::new();
        for s in 0..self.n {
            if seen[s] || self.adj[s].is_empty() {
                continue;
            }
            let mut comp = Vec::new();
            let mut q = VecDeque::from([Var(s as u32)]);
            seen[s] = true;
            while let Some(v) = q.pop_front() {
                comp.push(v);
                for &(w, _) in &self.adj[v.index()] {
                    if !seen[w.index()] {
                        seen[w.index()] = true;
                        q.push_back(w);
                    }
                }
            }
            out.push(comp);
        }
        out
    }

    /// BFS parity bipartition `(L, R)` of a forest: vertices at even BFS
    /// depth from each component root land in `L`, odd in `R`. Used by the
    /// proof of Lemma 4.3 ("as H is bipartite, let (L,R) be the node
    /// partition").
    ///
    /// Panics if the graph contains an odd cycle (callers guarantee a
    /// forest).
    #[allow(clippy::needless_range_loop)] // v indexes both color and adj
    pub fn bipartition(&self) -> (Vec<Var>, Vec<Var>) {
        let mut color: Vec<Option<bool>> = vec![None; self.n];
        for comp in self.components() {
            let root = comp[0];
            color[root.index()] = Some(false);
            let mut q = VecDeque::from([root]);
            while let Some(v) = q.pop_front() {
                let c = color[v.index()].unwrap();
                for &(w, _) in &self.adj[v.index()] {
                    match color[w.index()] {
                        None => {
                            color[w.index()] = Some(!c);
                            q.push_back(w);
                        }
                        Some(cw) => assert_ne!(cw, c, "graph is not bipartite"),
                    }
                }
            }
        }
        let mut left = Vec::new();
        let mut right = Vec::new();
        for v in 0..self.n {
            match color[v] {
                Some(false) => left.push(Var(v as u32)),
                Some(true) => right.push(Var(v as u32)),
                None => {}
            }
        }
        (left, right)
    }

    /// A rooted orientation of a forest: `parent[v]` is `v`'s BFS parent
    /// (roots map to `None`). Component roots are chosen as the
    /// lowest-indexed vertex of each component.
    pub fn rooted_forest(&self) -> Vec<Option<Var>> {
        let mut parent: Vec<Option<Var>> = vec![None; self.n];
        let mut seen = vec![false; self.n];
        for comp in self.components() {
            let root = comp[0];
            seen[root.index()] = true;
            let mut q = VecDeque::from([root]);
            while let Some(v) = q.pop_front() {
                for &(w, _) in &self.adj[v.index()] {
                    if !seen[w.index()] {
                        seen[w.index()] = true;
                        parent[w.index()] = Some(v);
                        q.push_back(w);
                    }
                }
            }
        }
        parent
    }

    /// The shortest cycle through any vertex (the graph's girth witness),
    /// as a vertex list; `None` for forests. BFS from every vertex —
    /// `O(V·E)`, fine at query scale.
    pub fn shortest_cycle(&self) -> Option<Vec<Var>> {
        let mut best: Option<Vec<Var>> = None;
        for s in 0..self.n {
            if self.adj[s].is_empty() {
                continue;
            }
            // BFS recording parent edges; a non-tree edge closes a cycle.
            let mut dist = vec![usize::MAX; self.n];
            let mut par: Vec<Option<(Var, EdgeId)>> = vec![None; self.n];
            dist[s] = 0;
            let mut q = VecDeque::from([Var(s as u32)]);
            while let Some(v) = q.pop_front() {
                for &(w, eid) in &self.adj[v.index()] {
                    if dist[w.index()] == usize::MAX {
                        dist[w.index()] = dist[v.index()] + 1;
                        par[w.index()] = Some((v, eid));
                        q.push_back(w);
                    } else if par[v.index()].map(|(_, pe)| pe) != Some(eid) {
                        // Cross or back edge: cycle through s iff both
                        // endpoints' paths go back to s; reconstruct and
                        // keep if shorter than the incumbent.
                        if let Some(cycle) = reconstruct_cycle(&par, v, w) {
                            if best.as_ref().map(|b| cycle.len() < b.len()).unwrap_or(true) {
                                best = Some(cycle);
                            }
                        }
                    }
                }
            }
        }
        best
    }

    /// Deletes the given vertices (and incident edges), returning the
    /// induced subgraph on the rest.
    #[allow(clippy::needless_range_loop)] // v indexes both adj arrays
    pub fn remove_vertices(&self, kill: &BTreeSet<Var>) -> SimpleGraph {
        let mut adj = vec![Vec::new(); self.n];
        for v in 0..self.n {
            if kill.contains(&Var(v as u32)) {
                continue;
            }
            for &(w, e) in &self.adj[v] {
                if !kill.contains(&w) {
                    adj[v].push((w, e));
                }
            }
        }
        SimpleGraph {
            n: self.n,
            adj,
            loops: self
                .loops
                .iter()
                .copied()
                .filter(|(v, _)| !kill.contains(v))
                .collect(),
        }
    }

    /// Vertices with at least one incident non-loop edge.
    pub fn used_vertices(&self) -> Vec<Var> {
        (0..self.n)
            .filter(|&v| !self.adj[v].is_empty())
            .map(|v| Var(v as u32))
            .collect()
    }

    /// Average degree over used vertices (0.0 if none).
    pub fn average_degree(&self) -> f64 {
        let used = self.used_vertices();
        if used.is_empty() {
            return 0.0;
        }
        2.0 * self.num_edges() as f64 / used.len() as f64
    }
}

/// Reconstructs the cycle closed by the non-tree edge `(v, w)` from BFS
/// parent pointers; `None` when the walk-backs do not merge (should not
/// happen in a BFS tree, kept defensive).
fn reconstruct_cycle(par: &[Option<(Var, EdgeId)>], v: Var, w: Var) -> Option<Vec<Var>> {
    let path_to_root = |mut x: Var| -> Vec<Var> {
        let mut p = vec![x];
        while let Some((q, _)) = par[x.index()] {
            p.push(q);
            x = q;
        }
        p
    };
    let pv = path_to_root(v);
    let pw = path_to_root(w);
    let sv: BTreeSet<Var> = pv.iter().copied().collect();
    // Lowest common ancestor: first vertex of pw also on pv.
    let lca = pw.iter().copied().find(|x| sv.contains(x))?;
    let mut cycle: Vec<Var> = pv.iter().copied().take_while(|x| *x != lca).collect();
    cycle.push(lca);
    let mut tail: Vec<Var> = pw.iter().copied().take_while(|x| *x != lca).collect();
    tail.reverse();
    cycle.extend(tail);
    if cycle.len() >= 3 {
        Some(cycle)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{cycle_query, path_query, star_query};

    #[test]
    fn path_is_forest() {
        let h = path_query(5);
        let g = SimpleGraph::from_hypergraph(&h).unwrap();
        assert!(g.is_forest());
        assert!(g.shortest_cycle().is_none());
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn cycle_is_not_forest_and_found() {
        let h = cycle_query(5);
        let g = SimpleGraph::from_hypergraph(&h).unwrap();
        assert!(!g.is_forest());
        let c = g.shortest_cycle().unwrap();
        assert_eq!(c.len(), 5);
        // All distinct vertices.
        let s: BTreeSet<Var> = c.iter().copied().collect();
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn triangle_in_larger_graph_is_girth_witness() {
        // 5-cycle plus a chord making a triangle.
        let mut h = cycle_query(5);
        h.add_edge([Var(0), Var(2)]);
        let g = SimpleGraph::from_hypergraph(&h).unwrap();
        assert_eq!(g.shortest_cycle().unwrap().len(), 3);
    }

    #[test]
    fn bipartition_of_star() {
        let h = star_query(4);
        let g = SimpleGraph::from_hypergraph(&h).unwrap();
        let (l, r) = g.bipartition();
        // Center on one side, leaves on the other.
        assert!(l.len() == 1 || r.len() == 1);
        assert_eq!(l.len() + r.len(), 5);
    }

    #[test]
    #[should_panic(expected = "not bipartite")]
    fn bipartition_panics_on_odd_cycle() {
        let h = cycle_query(3);
        let g = SimpleGraph::from_hypergraph(&h).unwrap();
        let _ = g.bipartition();
    }

    #[test]
    fn rooted_forest_parents() {
        let h = path_query(3); // 0-1-2-3
        let g = SimpleGraph::from_hypergraph(&h).unwrap();
        let parent = g.rooted_forest();
        assert_eq!(parent[0], None);
        assert_eq!(parent[1], Some(Var(0)));
        assert_eq!(parent[2], Some(Var(1)));
        assert_eq!(parent[3], Some(Var(2)));
    }

    #[test]
    fn remove_vertices_induces_subgraph() {
        let h = cycle_query(5);
        let g = SimpleGraph::from_hypergraph(&h).unwrap();
        let g2 = g.remove_vertices(&[Var(0)].into_iter().collect());
        assert!(g2.is_forest());
        assert_eq!(g2.num_edges(), 3);
    }

    #[test]
    fn self_loops_tracked() {
        let mut h = Hypergraph::new(1);
        h.add_edge([Var(0)]);
        h.add_edge([Var(0)]);
        let g = SimpleGraph::from_hypergraph(&h).unwrap();
        assert_eq!(g.self_loops().len(), 2);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn rejects_high_arity() {
        let mut h = Hypergraph::new(3);
        h.add_edge([Var(0), Var(1), Var(2)]);
        assert!(SimpleGraph::from_hypergraph(&h).is_none());
    }
}
