//! Property suite for the columnar shard codec: encode → decode must be
//! the identity for every semiring the engine ships, the frame length
//! must match the closed-form [`frame_bytes`] the planner prices with,
//! and any mangled byte stream must come back as a [`CodecError`],
//! never a panic or a silently different relation.

use faqs_relation::{frame_bytes, CodecError, Relation, FRAME_FIXED_BYTES};
use faqs_semiring::{Boolean, Count, Gf2, MaxPlus, MaxProd, MinPlus, Prob, Semiring};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Schemas covering the awkward shapes: nullary (one global value),
/// unary, wide, non-contiguous and unsorted variable ids.
const SCHEMAS: &[&[u32]] = &[&[], &[0], &[0, 1], &[3, 1], &[7, 0, 9, 2], &[2, 4, 1, 0, 5]];

fn random_rel<S: Semiring>(
    schema: &[u32],
    n: usize,
    domain: u32,
    rng: &mut StdRng,
    mut value_of: impl FnMut(&mut StdRng) -> S,
) -> Relation<S> {
    let vars: Vec<_> = schema.iter().map(|&i| faqs_hypergraph::Var(i)).collect();
    let pairs: Vec<(Vec<u32>, S)> = (0..n)
        .map(|_| {
            let t: Vec<u32> = schema.iter().map(|_| rng.random_range(0..domain)).collect();
            (t, value_of(rng))
        })
        .collect();
    Relation::from_pairs(vars, pairs)
}

/// One full round trip: exact frame size, decode-is-identity, and the
/// planner's closed form agrees with the bytes on the wire.
fn check_round_trip<S: Semiring>(r: &Relation<S>) {
    let frame = r.encode_frame();
    assert_eq!(
        frame.len() as u64,
        frame_bytes(r.schema().len(), r.len() as u64, S::WIRE_VALUE_BYTES),
        "frame length must equal the closed-form the planner prices with"
    );
    assert_eq!(frame.len() as u64 * 8, r.wire_bits());
    let back = Relation::<S>::decode_frame(&frame).expect("well-formed frame");
    assert_eq!(&back, r, "decode must invert encode exactly");
}

/// Every strict prefix of a valid frame must decode to `Truncated`, and
/// every appended tail makes the length disagree with the header.
fn check_truncations<S: Semiring>(r: &Relation<S>) {
    let frame = r.encode_frame();
    let cuts: Vec<usize> = [
        0,
        1,
        4,
        6,
        8,
        FRAME_FIXED_BYTES,
        frame.len().saturating_sub(1),
    ]
    .into_iter()
    .filter(|&c| c < frame.len())
    .collect();
    for cut in cuts {
        assert!(
            matches!(
                Relation::<S>::decode_frame(&frame[..cut]),
                Err(CodecError::Truncated { .. })
            ),
            "prefix of {cut} bytes must be Truncated"
        );
    }
    let mut padded = frame.clone();
    padded.push(0);
    assert!(
        matches!(
            Relation::<S>::decode_frame(&padded),
            Err(CodecError::Truncated { .. })
        ),
        "a trailing byte makes the length disagree with the header"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn count_frames_round_trip(
        combo in 0usize..6,
        seed: u64,
        n in 0usize..60,
        domain in 1u32..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let r: Relation<Count> = random_rel(SCHEMAS[combo], n, domain, &mut rng, |g| {
            Count(g.random_range(1..1 << 40))
        });
        check_round_trip(&r);
        check_truncations(&r);
    }

    #[test]
    fn zero_width_frames_round_trip(
        combo in 0usize..6,
        seed: u64,
        n in 0usize..60,
        domain in 1u32..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b: Relation<Boolean> =
            random_rel(SCHEMAS[combo], n, domain, &mut rng, |_| Boolean(true));
        check_round_trip(&b);
        check_truncations(&b);
        let g: Relation<Gf2> = random_rel(SCHEMAS[combo], n, domain, &mut rng, |_| Gf2(true));
        check_round_trip(&g);
    }

    #[test]
    fn float_frames_round_trip_bit_exact(
        combo in 0usize..6,
        seed: u64,
        n in 0usize..60,
        domain in 1u32..8,
    ) {
        // f64 carriers ship raw IEEE bits, so round trips are exact even
        // for values no decimal representation reproduces; ±∞ draws
        // exercise the tropical/lattice identities that survive the wire
        // because the listing never stores semiring zeros.
        let mut rng = StdRng::seed_from_u64(seed);
        let mp: Relation<MinPlus> = random_rel(SCHEMAS[combo], n, domain, &mut rng, |g| {
            MinPlus::new(g.random_range(-1000..1000) as f64 / 7.0)
        });
        check_round_trip(&mp);
        let xp: Relation<MaxPlus> = random_rel(SCHEMAS[combo], n, domain, &mut rng, |g| {
            MaxPlus::new(g.random_range(-1000..1000) as f64 / 7.0)
        });
        check_round_trip(&xp);
        let pr: Relation<Prob> = random_rel(SCHEMAS[combo], n, domain, &mut rng, |g| {
            Prob::new(g.random_range(1..1000) as f64 / 999.0)
        });
        check_round_trip(&pr);
        let mx: Relation<MaxProd> = random_rel(SCHEMAS[combo], n, domain, &mut rng, |g| {
            MaxProd::new(g.random_range(1..1000) as f64 / 999.0)
        });
        check_round_trip(&mx);
        check_truncations(&mp);
    }

    #[test]
    fn corrupted_headers_are_errors_not_panics(
        seed: u64,
        n in 1usize..20,
        byte in 0usize..FRAME_FIXED_BYTES,
        flip in 1u8..=255,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let r: Relation<Count> =
            random_rel(&[0, 1], n, 8, &mut rng, |g| Count(g.random_range(1..100)));
        let mut frame = r.encode_frame();
        frame[byte] ^= flip;
        // Whatever the flip hit — magic, version, arity, row count,
        // value width — decode must refuse or reproduce a relation, but
        // never panic or read out of bounds.
        let _ = Relation::<Count>::decode_frame(&frame);
    }

    #[test]
    fn cross_semiring_decode_is_width_checked(
        seed: u64,
        n in 0usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let r: Relation<Count> =
            random_rel(&[0, 1], n, 8, &mut rng, |g| Count(g.random_range(1..100)));
        let frame = r.encode_frame();
        prop_assert!(matches!(
            Relation::<Boolean>::decode_frame(&frame),
            Err(CodecError::ValueWidthMismatch { frame: 8, decoder: 0 })
        ));
        // Same width, different carrier: MinPlus accepts the bytes (the
        // codec checks shape, not meaning) — but the length still must.
        prop_assert!(Relation::<MinPlus>::decode_frame(&frame).is_ok());
    }
}
