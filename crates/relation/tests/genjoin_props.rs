//! Property suite for the worst-case-optimal generic join: on random
//! cyclic factor sets it must agree *exactly* — bit-for-bit on float
//! semirings — with the binary join cascade folded in the same factor
//! order, across `Count`, `Boolean` and `MinPlus`.

use faqs_hypergraph::Var;
use faqs_relation::{generic_join, Relation};
use faqs_semiring::{Boolean, Count, MinPlus, Semiring};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Factor-schema families: triangle, 4-cycle, K4 (all six edges), a
/// triangle with a pendant unary, a chordal square, and a schema listed
/// in non-`var_order` column order.
const SHAPES: &[&[&[u32]]] = &[
    &[&[0, 1], &[1, 2], &[0, 2]],
    &[&[0, 1], &[1, 2], &[2, 3], &[0, 3]],
    &[&[0, 1], &[0, 2], &[0, 3], &[1, 2], &[1, 3], &[2, 3]],
    &[&[0, 1], &[1, 2], &[0, 2], &[1]],
    &[&[0, 1], &[1, 2], &[2, 3], &[0, 3], &[0, 2]],
    &[&[1, 0], &[2, 1], &[2, 0]],
];

fn vars(ids: &[u32]) -> Vec<Var> {
    ids.iter().map(|&i| Var(i)).collect()
}

fn random_rel<S: Semiring>(
    schema: &[u32],
    n: usize,
    domain: u32,
    rng: &mut StdRng,
    mut value_of: impl FnMut(&mut StdRng) -> S,
) -> Relation<S> {
    let pairs: Vec<(Vec<u32>, S)> = (0..n)
        .map(|_| {
            let t: Vec<u32> = schema.iter().map(|_| rng.random_range(0..domain)).collect();
            (t, value_of(rng))
        })
        .collect();
    Relation::from_pairs(vars(schema), pairs)
}

/// The reference: a left-fold binary cascade over the factor slice,
/// reordered onto `var_order` at the end. `generic_join` promises the
/// same association order, hence exact equality.
fn cascade<S: Semiring>(factors: &[Relation<S>], var_order: &[Var]) -> Relation<S> {
    let mut acc = factors[0].clone();
    for f in &factors[1..] {
        acc = acc.join(f);
    }
    if acc.schema() == var_order {
        acc
    } else {
        acc.reorder(var_order)
    }
}

fn check_shape<S: Semiring>(
    shape: usize,
    seed: u64,
    n: usize,
    domain: u32,
    value_of: impl FnMut(&mut StdRng) -> S + Copy,
) {
    let schemas = SHAPES[shape % SHAPES.len()];
    let mut rng = StdRng::seed_from_u64(seed);
    let factors: Vec<Relation<S>> = schemas
        .iter()
        .map(|s| random_rel(s, n, domain, &mut rng, value_of))
        .collect();
    let mut order: Vec<u32> = schemas.iter().flat_map(|s| s.iter().copied()).collect();
    order.sort_unstable();
    order.dedup();
    let var_order = vars(&order);

    let refs: Vec<&Relation<S>> = factors.iter().collect();
    let gj = generic_join(&refs, &var_order);
    let want = cascade(&factors, &var_order);

    assert_eq!(gj.schema(), var_order.as_slice());
    assert_eq!(gj.len(), want.len(), "shape {shape} cardinality");
    for i in 0..gj.len() {
        assert_eq!(gj.tuple_at(i), want.tuple_at(i), "shape {shape} row {i}");
        assert_eq!(
            gj.value_at(i),
            want.value_at(i),
            "shape {shape} annotation {i}"
        );
    }
    // Canonical invariants: strictly sorted, no zero annotations.
    for w in gj.tuples().collect::<Vec<_>>().windows(2) {
        assert!(w[0] < w[1], "rows not strictly sorted");
    }
    assert!(gj.iter().all(|(_, v)| !v.is_zero()), "zero listed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counting_generic_join_matches_cascade(
        shape in 0usize..6,
        seed: u64,
        n in 0usize..60,
        domain in 1u32..6,
    ) {
        check_shape(shape, seed, n, domain, |r: &mut StdRng| {
            Count(r.random_range(0..4))
        });
    }

    #[test]
    fn boolean_generic_join_matches_cascade(
        shape in 0usize..6,
        seed: u64,
        n in 0usize..60,
        domain in 1u32..6,
    ) {
        check_shape(shape, seed, n, domain, |_: &mut StdRng| Boolean(true));
    }

    #[test]
    fn minplus_generic_join_is_bit_identical(
        shape in 0usize..6,
        seed: u64,
        n in 0usize..60,
        domain in 1u32..6,
    ) {
        // PartialEq on f64 is bitwise-equivalent here (no NaNs drawn),
        // so assert_eq in check_shape is the bit-identity check.
        check_shape(shape, seed, n, domain, |r: &mut StdRng| {
            MinPlus(f64::from(r.random_range(0..1000)) * 0.125)
        });
    }
}
