//! Property suite for the columnar kernel: the sort-merge / galloping
//! join, semijoin and projection operators must agree with a naive
//! nested-loop reference on random relations, across semirings with
//! different zero/duplicate behaviour (`Count`, `Boolean`, `MinPlus`).

use faqs_hypergraph::Var;
use faqs_relation::Relation;
use faqs_semiring::{Boolean, Count, MinPlus, Semiring};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Schema pairs exercising every key shape: full overlap, partial
/// overlap at prefix and non-prefix positions, disjoint (cartesian),
/// unary ⊆ binary containment, and unsorted schema orders.
const SCHEMAS: &[(&[u32], &[u32])] = &[
    (&[0, 1], &[1, 2]),
    (&[0, 1], &[0, 1]),
    (&[0], &[0, 1]),
    (&[0, 1, 2], &[1, 3]),
    (&[0, 1], &[2, 3]),
    (&[2, 0], &[1, 0]),
    (&[1, 0, 2], &[2, 1]),
];

fn vars(ids: &[u32]) -> Vec<Var> {
    ids.iter().map(|&i| Var(i)).collect()
}

/// A random relation over `schema` with `n` draws in `[0, domain)` and
/// values from `value_of` (duplicates ⊕-collapse; zero values test the
/// listing invariant).
fn random_rel<S: Semiring>(
    schema: &[u32],
    n: usize,
    domain: u32,
    rng: &mut StdRng,
    mut value_of: impl FnMut(&mut StdRng) -> S,
) -> Relation<S> {
    let pairs: Vec<(Vec<u32>, S)> = (0..n)
        .map(|_| {
            let t: Vec<u32> = schema.iter().map(|_| rng.random_range(0..domain)).collect();
            (t, value_of(rng))
        })
        .collect();
    Relation::from_pairs(vars(schema), pairs)
}

/// Checks the canonical invariants: strictly sorted rows, no zero
/// annotations, arena shape consistent with the schema.
fn assert_canonical<S: Semiring>(r: &Relation<S>, what: &str) {
    let tuples: Vec<&[u32]> = r.tuples().collect();
    for w in tuples.windows(2) {
        assert!(w[0] < w[1], "{what}: rows not strictly sorted: {w:?}");
    }
    for (t, v) in r.iter() {
        assert_eq!(t.len(), r.schema().len(), "{what}: arity drift");
        assert!(!v.is_zero(), "{what}: zero annotation listed");
    }
}

/// Nested-loop reference join: every pair of tuples agreeing on the
/// shared variables contributes the ⊗-product.
fn ref_join<S: Semiring>(a: &Relation<S>, b: &Relation<S>) -> Relation<S> {
    let shared = a.shared_vars(b);
    let a_pos: Vec<usize> = shared
        .iter()
        .map(|v| a.schema().iter().position(|w| w == v).unwrap())
        .collect();
    let b_pos: Vec<usize> = shared
        .iter()
        .map(|v| b.schema().iter().position(|w| w == v).unwrap())
        .collect();
    let fresh: Vec<Var> = b
        .schema()
        .iter()
        .copied()
        .filter(|v| !a.schema().contains(v))
        .collect();
    let fresh_pos: Vec<usize> = fresh
        .iter()
        .map(|v| b.schema().iter().position(|w| w == v).unwrap())
        .collect();
    let mut schema: Vec<Var> = a.schema().to_vec();
    schema.extend(fresh.iter().copied());
    let mut pairs: Vec<(Vec<u32>, S)> = Vec::new();
    for (t, v) in a.iter() {
        for (u, w) in b.iter() {
            if a_pos.iter().zip(&b_pos).all(|(&i, &j)| t[i] == u[j]) {
                let mut row = t.to_vec();
                row.extend(fresh_pos.iter().map(|&j| u[j]));
                pairs.push((row, v.mul(w)));
            }
        }
    }
    Relation::from_pairs(schema, pairs)
}

/// Nested-loop reference semijoin: keep `a`'s entries with a witness in
/// `b` on the shared variables, annotations untouched.
fn ref_semijoin<S: Semiring>(a: &Relation<S>, b: &Relation<S>) -> Relation<S> {
    let shared = a.shared_vars(b);
    let a_pos: Vec<usize> = shared
        .iter()
        .map(|v| a.schema().iter().position(|w| w == v).unwrap())
        .collect();
    let b_pos: Vec<usize> = shared
        .iter()
        .map(|v| b.schema().iter().position(|w| w == v).unwrap())
        .collect();
    let pairs: Vec<(Vec<u32>, S)> = a
        .iter()
        .filter(|(t, _)| {
            b.iter()
                .any(|(u, _)| a_pos.iter().zip(&b_pos).all(|(&i, &j)| t[i] == u[j]))
        })
        .map(|(t, v)| (t.to_vec(), v.clone()))
        .collect();
    Relation::from_pairs(a.schema().to_vec(), pairs)
}

/// Reference projection: ⊕-fold collapsed tuples with a quadratic scan.
fn ref_project<S: Semiring>(a: &Relation<S>, onto: &[Var]) -> Relation<S> {
    let pos: Vec<usize> = onto
        .iter()
        .map(|v| a.schema().iter().position(|w| w == v).unwrap())
        .collect();
    let mut keys: Vec<Vec<u32>> = Vec::new();
    let mut vals: Vec<S> = Vec::new();
    for (t, v) in a.iter() {
        let key: Vec<u32> = pos.iter().map(|&i| t[i]).collect();
        match keys.iter().position(|k| *k == key) {
            Some(i) => vals[i].add_assign(v),
            None => {
                keys.push(key);
                vals.push(v.clone());
            }
        }
    }
    Relation::from_pairs(
        onto.to_vec(),
        keys.into_iter().zip(vals).collect::<Vec<_>>(),
    )
}

/// Runs every operator comparison for one semiring.
fn check_ops<S: Semiring>(
    combo: usize,
    seed: u64,
    na: usize,
    nb: usize,
    domain: u32,
    value_of: impl FnMut(&mut StdRng) -> S + Copy,
) {
    let (sa, sb) = SCHEMAS[combo % SCHEMAS.len()];
    let mut rng = StdRng::seed_from_u64(seed);
    let a: Relation<S> = random_rel(sa, na, domain, &mut rng, value_of);
    let b: Relation<S> = random_rel(sb, nb, domain, &mut rng, value_of);
    assert_canonical(&a, "from_pairs a");
    assert_canonical(&b, "from_pairs b");

    let j = a.join(&b);
    assert_canonical(&j, "join");
    assert_eq!(j, ref_join(&a, &b), "join vs nested loop");

    let shared = a.shared_vars(&b);
    let idx = b.build_index(&shared);
    assert_eq!(a.join_indexed(&b, &idx), j, "join with prebuilt index");

    let sj = a.semijoin(&b);
    assert_canonical(&sj, "semijoin");
    assert_eq!(sj, ref_semijoin(&a, &b), "semijoin vs nested loop");
    assert_eq!(
        a.semijoin_indexed(&b, &idx),
        sj,
        "semijoin with prebuilt index"
    );
    let own = a.build_index(&shared);
    assert_eq!(a.semijoin_probed(&own, &b), sj, "probed semijoin");

    // Project onto every suffix/prefix/single-var subset of a's schema.
    let schema = a.schema().to_vec();
    for k in 1..=schema.len() {
        let prefix = &schema[..k];
        let p = a.project(prefix);
        assert_canonical(&p, "project prefix");
        assert_eq!(p, ref_project(&a, prefix), "project prefix vs reference");
        let suffix = &schema[schema.len() - k..];
        let p = a.project(suffix);
        assert_canonical(&p, "project suffix");
        assert_eq!(p, ref_project(&a, suffix), "project suffix vs reference");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counting_kernel_matches_reference(
        combo in 0usize..7,
        seed: u64,
        na in 0usize..40,
        nb in 0usize..40,
        domain in 1u32..5,
    ) {
        // Count(0) draws exercise the zero-dropping path.
        check_ops::<Count>(combo, seed, na, nb, domain, |r| Count(r.random_range(0..4)));
    }

    #[test]
    fn boolean_kernel_matches_reference(
        combo in 0usize..7,
        seed: u64,
        na in 0usize..40,
        nb in 0usize..40,
        domain in 1u32..5,
    ) {
        check_ops::<Boolean>(combo, seed, na, nb, domain, |r| Boolean(r.random_bool(0.8)));
    }

    #[test]
    fn tropical_kernel_matches_reference(
        combo in 0usize..7,
        seed: u64,
        na in 0usize..40,
        nb in 0usize..40,
        domain in 1u32..5,
    ) {
        // Integer-valued costs keep min/+ exact; occasional +∞ draws
        // exercise the tropical zero.
        check_ops::<MinPlus>(combo, seed, na, nb, domain, |r| {
            if r.random_bool(0.1) {
                MinPlus::INFINITY
            } else {
                MinPlus::new(r.random_range(0..16) as f64)
            }
        });
    }

    #[test]
    fn aggregate_out_sum_equals_project(
        combo in 0usize..7,
        seed: u64,
        n in 0usize..40,
        domain in 1u32..5,
    ) {
        let (sa, _) = SCHEMAS[combo % SCHEMAS.len()];
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Relation<Count> =
            random_rel(sa, n, domain, &mut rng, |r| Count(r.random_range(0..4)));
        for &v in a.schema() {
            let rest: Vec<Var> = a.schema().iter().copied().filter(|w| *w != v).collect();
            prop_assert_eq!(
                a.aggregate_out(v, faqs_relation::Aggregate::Sum),
                a.project(&rest)
            );
        }
    }

    #[test]
    fn product_same_schema_matches_reference(
        seed: u64,
        na in 0usize..40,
        nb in 0usize..40,
        domain in 1u32..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Relation<Count> =
            random_rel(&[0, 1], na, domain, &mut rng, |r| Count(r.random_range(1..4)));
        let b: Relation<Count> =
            random_rel(&[0, 1], nb, domain, &mut rng, |r| Count(r.random_range(1..4)));
        let p = a.product_same_schema(&b);
        assert_canonical(&p, "product_same_schema");
        // Same-schema product is the join restricted to the shared schema.
        prop_assert_eq!(p, ref_join(&a, &b));
    }

    #[test]
    fn split_union_roundtrips(
        seed: u64,
        n in 0usize..60,
        parts in 1usize..5,
        domain in 1u32..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Relation<Count> =
            random_rel(&[0, 1], n, domain, &mut rng, |r| Count(r.random_range(1..4)));
        let split = a.split(parts);
        prop_assert_eq!(Relation::union_all(&split), a);
    }
}
