//! Epoch-stamped snapshot handles: the arc-swap primitive behind
//! snapshot-consistent serving over mutable relations.
//!
//! A [`SnapshotCell`] holds one immutable value (a relation, a whole
//! [`FaqQuery`](crate::FaqQuery), …) behind an `Arc`, stamped with a
//! monotonically increasing *epoch*. Readers take a [`Snapshot`] — an
//! `Arc` clone plus the epoch — under a lock held only for the clone
//! (a pointer bump), so writers installing a new version never block
//! readers for longer than that, and a reader's pinned snapshot stays
//! valid and unchanged no matter how many versions land after it.
//! Writers prepare the next value *outside* the lock (copy-on-write)
//! and [`SnapshotCell::store`] swaps it in.
//!
//! This is the hand-rolled std-only equivalent of the `arc-swap` crate
//! pattern: no external dependency, and the brief mutex keeps the
//! epoch-and-pointer pair atomic (a lock-free split would let a reader
//! observe version `n`'s epoch with version `n+1`'s data).

use std::sync::{Arc, Mutex};

/// An epoch-pinned, immutable handle to one published version.
///
/// Cloning is an `Arc` clone; the underlying value is never copied and
/// never mutates — `RelationDelta` writers publish *new* versions
/// through the owning [`SnapshotCell`] instead.
#[derive(Debug)]
pub struct Snapshot<T> {
    epoch: u64,
    value: Arc<T>,
}

// Manual impl: cloning shares the `Arc`, so `T: Clone` is not needed.
impl<T> Clone for Snapshot<T> {
    fn clone(&self) -> Self {
        Snapshot {
            epoch: self.epoch,
            value: Arc::clone(&self.value),
        }
    }
}

impl<T> Snapshot<T> {
    /// The version counter this handle pins (the cell's first published
    /// value is epoch `0`; every [`SnapshotCell::store`] increments it).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned value.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// The pinned value as a shared handle (e.g. to move into a worker
    /// thread without cloning the data).
    pub fn shared(&self) -> Arc<T> {
        Arc::clone(&self.value)
    }
}

impl<T> std::ops::Deref for Snapshot<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

/// A single publish point: writers swap in new versions, readers take
/// epoch-pinned [`Snapshot`] handles.
#[derive(Debug)]
pub struct SnapshotCell<T> {
    current: Mutex<Snapshot<T>>,
}

impl<T> SnapshotCell<T> {
    /// A cell publishing `value` at epoch `0`.
    pub fn new(value: T) -> Self {
        SnapshotCell {
            current: Mutex::new(Snapshot {
                epoch: 0,
                value: Arc::new(value),
            }),
        }
    }

    /// The current version, pinned. The internal lock is held only for
    /// an `Arc` clone, so a concurrent [`SnapshotCell::store`] never
    /// blocks readers behind the writer's (potentially large)
    /// copy-on-write work.
    pub fn load(&self) -> Snapshot<T> {
        self.lock().clone()
    }

    /// The current epoch without pinning the value.
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Publishes `value` as the next version and returns its epoch.
    /// Existing [`Snapshot`] handles keep their pinned versions.
    ///
    /// Concurrent writers are *last-write-wins* on the value; callers
    /// that read-modify-write (apply a delta to the current version)
    /// must serialise among themselves — see the serve layer's registry.
    pub fn store(&self, value: T) -> u64 {
        let mut cur = self.lock();
        cur.epoch += 1;
        cur.value = Arc::new(value);
        cur.epoch
    }

    /// Locks the cell, recovering from poison: the critical section is
    /// a pointer assignment (no tearing is possible), so a thread that
    /// panicked while holding the guard left a fully consistent
    /// snapshot behind and the cell serves on.
    fn lock(&self) -> std::sync::MutexGuard<'_, Snapshot<T>> {
        match self.current.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.current.clear_poison();
                poisoned.into_inner()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_pin_versions_across_stores() {
        let cell = SnapshotCell::new(vec![1, 2, 3]);
        let pinned = cell.load();
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(cell.store(vec![4]), 1);
        assert_eq!(cell.store(vec![5]), 2);
        // The old handle is untouched; new loads see the latest.
        assert_eq!(*pinned.value(), vec![1, 2, 3]);
        let now = cell.load();
        assert_eq!(now.epoch(), 2);
        assert_eq!(*now.value(), vec![5]);
        assert_eq!(cell.epoch(), 2);
    }

    #[test]
    fn concurrent_readers_see_consistent_epoch_value_pairs() {
        let cell = std::sync::Arc::new(SnapshotCell::new(0u64));
        std::thread::scope(|s| {
            let c = std::sync::Arc::clone(&cell);
            let writer = s.spawn(move || {
                for i in 1..=500u64 {
                    c.store(i);
                }
            });
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&cell);
                s.spawn(move || {
                    for _ in 0..500 {
                        let snap = c.load();
                        // Epoch n must carry exactly value n.
                        assert_eq!(snap.epoch(), *snap.value());
                    }
                });
            }
            writer.join().unwrap();
        });
    }
}
