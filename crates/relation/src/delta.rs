//! Batched mutation of relations: sorted deltas, their application to
//! the columnar arena, and signed (`⊕`/`⊖`) merging of delta relations.
//!
//! The incremental FAQ engine mutates a factor by building a
//! [`RelationDelta`] (any mix of inserts, deletes and overwrites, in any
//! order), then applying it in **one linear merge pass** over the sorted
//! arena — no per-tuple `Vec::splice`. The application reports exactly
//! which tuples changed annotation as an [`AppliedDelta`], which in turn
//! yields the two plain delta relations `Δ⁺` (new values at touched
//! rows) and `Δ⁻` (old values at touched rows) that propagate up a GHD
//! by multilinearity: `Δ(f ⋈ rest) = Δf ⋈ rest`.

use crate::kernel;
use crate::relation::Relation;
use faqs_hypergraph::Var;
use faqs_semiring::Semiring;
use std::borrow::Cow;
use std::cmp::Ordering;

/// One pending mutation of a single tuple inside a [`RelationDelta`].
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaOp<S> {
    /// `⊕`-accumulate the value into the tuple's annotation (an
    /// *insert* when the tuple was absent).
    Add(S),
    /// Overwrite the tuple's annotation; `Set(0)` is a *delete*.
    Set(S),
}

impl<S: Semiring> DeltaOp<S> {
    /// Sequential composition: the op equivalent to applying `self`
    /// first and `next` second.
    fn then(&self, next: &DeltaOp<S>) -> DeltaOp<S> {
        match (self, next) {
            (DeltaOp::Add(a), DeltaOp::Add(b)) => DeltaOp::Add(a.add(b)),
            (DeltaOp::Set(a), DeltaOp::Add(b)) => DeltaOp::Set(a.add(b)),
            (_, DeltaOp::Set(b)) => DeltaOp::Set(b.clone()),
        }
    }

    /// The annotation after applying this op to `old`.
    fn apply_to(&self, old: &S) -> S {
        match self {
            DeltaOp::Add(d) => old.add(d),
            DeltaOp::Set(v) => v.clone(),
        }
    }
}

/// A batch of tuple mutations against one relation schema.
///
/// Ops may be recorded in any order and may hit the same tuple more
/// than once; application canonicalises the batch (sort + sequential
/// composition of same-tuple ops) before the merge, so `insert` /
/// `delete` / `set` on a delta mirror the one-shot semantics of calling
/// the corresponding [`Relation`] methods in recording order.
#[derive(Clone, Debug)]
pub struct RelationDelta<S: Semiring> {
    schema: Vec<Var>,
    /// Row-major tuple arena, `ops.len() * schema.len()` entries.
    rows: Vec<u32>,
    ops: Vec<DeltaOp<S>>,
}

impl<S: Semiring> RelationDelta<S> {
    /// An empty delta over the given schema (distinct variables).
    pub fn new<I: IntoIterator<Item = Var>>(schema: I) -> Self {
        let schema: Vec<Var> = schema.into_iter().collect();
        let mut sorted = schema.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            schema.len(),
            "schema variables must be distinct"
        );
        RelationDelta {
            schema,
            rows: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// The schema, in tuple order.
    pub fn schema(&self) -> &[Var] {
        &self.schema
    }

    /// Number of recorded ops (before same-tuple composition).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops are recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Records an `⊕`-accumulating insert of one entry.
    pub fn insert(&mut self, tuple: Vec<u32>, value: S) {
        self.push(tuple, DeltaOp::Add(value));
    }

    /// Records a delete of one tuple (overwrite with zero).
    pub fn delete(&mut self, tuple: Vec<u32>) {
        self.push(tuple, DeltaOp::Set(S::zero()));
    }

    /// Records an overwrite of one tuple's annotation.
    pub fn set(&mut self, tuple: Vec<u32>, value: S) {
        self.push(tuple, DeltaOp::Set(value));
    }

    /// Iterates over the recorded `(tuple, op)` pairs in recording order.
    pub fn ops(&self) -> impl Iterator<Item = (&[u32], &DeltaOp<S>)> + '_ {
        let r = self.schema.len();
        self.ops
            .iter()
            .enumerate()
            .map(move |(i, op)| (&self.rows[i * r..i * r + r], op))
    }

    fn push(&mut self, tuple: Vec<u32>, op: DeltaOp<S>) {
        assert_eq!(tuple.len(), self.schema.len(), "tuple arity mismatch");
        self.rows.extend_from_slice(&tuple);
        self.ops.push(op);
    }

    /// Sorted, per-tuple-composed form: rows strictly ascending, one op
    /// per distinct tuple (same-tuple ops composed in recording order).
    fn canonical(&self) -> (Vec<u32>, Vec<DeltaOp<S>>) {
        let r = self.schema.len();
        let n = self.ops.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        // Tie-break on recording index so composition order is stable.
        order.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            self.rows[a * r..a * r + r]
                .cmp(&self.rows[b * r..b * r + r])
                .then(a.cmp(&b))
        });
        let mut rows: Vec<u32> = Vec::with_capacity(self.rows.len());
        let mut ops: Vec<DeltaOp<S>> = Vec::with_capacity(n);
        for &i in &order {
            let i = i as usize;
            let t = &self.rows[i * r..i * r + r];
            if let Some(last) = ops.last_mut() {
                if &rows[rows.len() - r..] == t {
                    *last = last.then(&self.ops[i]);
                    continue;
                }
            }
            rows.extend_from_slice(t);
            ops.push(self.ops[i].clone());
        }
        (rows, ops)
    }
}

/// The record of what a [`Relation::apply_delta`] call actually changed:
/// the touched tuples (sorted) with their old and new annotations.
/// Tuples whose annotation ended up unchanged are not recorded.
#[derive(Clone, Debug)]
pub struct AppliedDelta<S: Semiring> {
    schema: Vec<Var>,
    rows: Vec<u32>,
    old: Vec<S>,
    new: Vec<S>,
}

impl<S: Semiring> AppliedDelta<S> {
    /// The schema of the mutated relation.
    pub fn schema(&self) -> &[Var] {
        &self.schema
    }

    /// Number of tuples whose annotation changed.
    pub fn len(&self) -> usize {
        self.old.len()
    }

    /// Whether the delta changed nothing (all ops were no-ops).
    pub fn is_empty(&self) -> bool {
        self.old.is_empty()
    }

    /// Iterates over `(tuple, old_value, new_value)` in canonical order;
    /// absent-before (insert) reports `old = 0`, absent-after (delete)
    /// reports `new = 0`.
    pub fn changes(&self) -> impl Iterator<Item = (&[u32], &S, &S)> + '_ {
        let r = self.schema.len();
        (0..self.len()).map(move |i| (&self.rows[i * r..i * r + r], &self.old[i], &self.new[i]))
    }

    /// `Δ⁺`: the new annotations at the touched tuples, as a relation
    /// (zero-valued rows — deletions — drop out per the listing
    /// representation).
    pub fn inserted(&self) -> Relation<S> {
        self.side(&self.new)
    }

    /// `Δ⁻`: the old annotations at the touched tuples, as a relation.
    pub fn removed(&self) -> Relation<S> {
        self.side(&self.old)
    }

    fn side(&self, vals: &[S]) -> Relation<S> {
        let r = self.schema.len();
        let mut data: Vec<u32> = Vec::new();
        let mut values: Vec<S> = Vec::new();
        for (i, v) in vals.iter().enumerate() {
            if !v.is_zero() {
                data.extend_from_slice(&self.rows[i * r..i * r + r]);
                values.push(v.clone());
            }
        }
        // Rows are already strictly sorted: from_columns takes the
        // no-sort fast path.
        Relation::from_columns(self.schema.clone(), data, values)
    }
}

impl<S: Semiring> Relation<S> {
    /// Applies a batched delta in one linear merge over the sorted
    /// arena, returning the tuples whose annotation actually changed.
    ///
    /// Deleting an absent tuple and inserting a zero are no-ops; an
    /// insert hitting an existing tuple `⊕`-accumulates (matching
    /// [`Relation::insert`]); annotations that reach zero drop out of
    /// the listing.
    pub fn apply_delta(&mut self, delta: &RelationDelta<S>) -> AppliedDelta<S> {
        assert_eq!(self.schema(), delta.schema(), "delta schema mismatch");
        let r = self.schema().len();
        let (drows, dops) = delta.canonical();
        let (n, dn) = (self.len(), dops.len());

        let mut out_data: Vec<u32> = Vec::with_capacity((n + dn) * r);
        let mut out_values: Vec<S> = Vec::with_capacity(n + dn);
        let mut rows: Vec<u32> = Vec::new();
        let mut old: Vec<S> = Vec::new();
        let mut new: Vec<S> = Vec::new();

        let (mut i, mut j) = (0usize, 0usize);
        while i < n || j < dn {
            let ord = if i >= n {
                Ordering::Greater
            } else if j >= dn {
                Ordering::Less
            } else {
                self.tuple_at(i).cmp(&drows[j * r..j * r + r])
            };
            match ord {
                Ordering::Less => {
                    out_data.extend_from_slice(self.tuple_at(i));
                    out_values.push(self.value_at(i).clone());
                    i += 1;
                }
                Ordering::Equal => {
                    let t = self.tuple_at(i);
                    let prev = self.value_at(i);
                    let next = dops[j].apply_to(prev);
                    if next != *prev {
                        rows.extend_from_slice(t);
                        old.push(prev.clone());
                        new.push(next.clone());
                    }
                    if !next.is_zero() {
                        out_data.extend_from_slice(t);
                        out_values.push(next);
                    }
                    i += 1;
                    j += 1;
                }
                Ordering::Greater => {
                    let t = &drows[j * r..j * r + r];
                    let next = dops[j].apply_to(&S::zero());
                    if !next.is_zero() {
                        rows.extend_from_slice(t);
                        old.push(S::zero());
                        new.push(next.clone());
                        out_data.extend_from_slice(t);
                        out_values.push(next);
                    }
                    j += 1;
                }
            }
        }
        self.set_parts(out_data, out_values);
        AppliedDelta {
            schema: self.schema().to_vec(),
            rows,
            old,
            new,
        }
    }

    /// Signed merge `self ⊕ plus ⊖ minus` over three same-variable
    /// relations (column order of `plus`/`minus` is aligned to `self`'s
    /// first). `None` when some cancellation is not representable in the
    /// semiring — the incremental engine then recomputes instead.
    pub fn signed_apply(&self, plus: &Relation<S>, minus: &Relation<S>) -> Option<Relation<S>> {
        let plus = self.aligned(plus);
        let minus = self.aligned(minus);
        let (data, values) = kernel::merge_signed(self, &plus, &minus)?;
        let mut out = Relation::new(self.schema().to_vec());
        out.set_parts(data, values);
        Some(out)
    }

    /// `other` with its columns reordered to this relation's schema
    /// (borrowed when already aligned).
    fn aligned<'a>(&self, other: &'a Relation<S>) -> Cow<'a, Relation<S>> {
        if other.schema() == self.schema() {
            Cow::Borrowed(other)
        } else {
            Cow::Owned(other.reorder(self.schema()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faqs_semiring::{Count, Gf2};

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn rel(rows: &[([u32; 2], u64)]) -> Relation<Count> {
        Relation::from_pairs(
            vec![v(0), v(1)],
            rows.iter().map(|(t, c)| (t.to_vec(), Count(*c))),
        )
    }

    #[test]
    fn batched_delta_matches_one_shot_mutations() {
        let mut batched = rel(&[([1, 1], 2), ([2, 2], 3), ([3, 3], 4)]);
        let mut oneshot = batched.clone();

        let mut d = RelationDelta::new(vec![v(0), v(1)]);
        d.insert(vec![0, 9], Count(7)); // fresh tuple
        d.insert(vec![1, 1], Count(5)); // accumulate onto existing
        d.delete(vec![2, 2]); // delete existing
        d.delete(vec![8, 8]); // delete absent: no-op
        d.set(vec![3, 3], Count(1)); // overwrite
        let applied = batched.apply_delta(&d);

        oneshot.insert(vec![0, 9], Count(7));
        oneshot.insert(vec![1, 1], Count(5));
        assert_eq!(oneshot.delete(&[2, 2]), Some(Count(3)));
        assert_eq!(oneshot.delete(&[8, 8]), None);
        oneshot.delete(&[3, 3]);
        oneshot.insert(vec![3, 3], Count(1));

        assert_eq!(batched, oneshot);
        assert_eq!(applied.len(), 4, "the absent delete is not a change");
        // Δ⁺ lists new values, Δ⁻ old values; the delete appears only in Δ⁻.
        assert_eq!(applied.inserted().get(&[0, 9]), Some(&Count(7)));
        assert_eq!(applied.inserted().get(&[2, 2]), None);
        assert_eq!(applied.removed().get(&[2, 2]), Some(&Count(3)));
        assert_eq!(applied.removed().get(&[0, 9]), None);
    }

    #[test]
    fn same_tuple_ops_compose_in_recording_order() {
        let mut r = rel(&[([1, 1], 10)]);
        let mut d = RelationDelta::new(vec![v(0), v(1)]);
        d.delete(vec![1, 1]);
        d.insert(vec![1, 1], Count(4)); // delete-then-reinsert
        d.insert(vec![1, 1], Count(1));
        let applied = r.apply_delta(&d);
        assert_eq!(r.get(&[1, 1]), Some(&Count(5)));
        assert_eq!(applied.len(), 1);
        let (_, old, new) = applied.changes().next().unwrap();
        assert_eq!((old, new), (&Count(10), &Count(5)));
    }

    #[test]
    fn noop_delta_reports_empty() {
        let mut r = rel(&[([1, 1], 2)]);
        let mut d = RelationDelta::new(vec![v(0), v(1)]);
        d.insert(vec![1, 1], Count(0));
        d.delete(vec![7, 7]);
        d.set(vec![1, 1], Count(2)); // overwrite with the same value
        let applied = r.apply_delta(&d);
        assert!(applied.is_empty());
        assert_eq!(r.get(&[1, 1]), Some(&Count(2)));
    }

    #[test]
    fn accumulate_to_zero_drops_row() {
        let mut r: Relation<Gf2> =
            Relation::from_pairs(vec![v(0), v(1)], [(vec![1, 1], Gf2(true))]);
        let mut d = RelationDelta::new(vec![v(0), v(1)]);
        d.insert(vec![1, 1], Gf2(true)); // 1 ⊕ 1 = 0 in F₂
        let applied = r.apply_delta(&d);
        assert!(r.is_empty());
        assert_eq!(applied.len(), 1);
        assert!(applied.inserted().is_empty());
        assert_eq!(applied.removed().len(), 1);
    }

    #[test]
    fn signed_apply_cancels_and_refuses() {
        let base = rel(&[([1, 1], 5), ([2, 2], 3)]);
        let plus = rel(&[([3, 3], 7)]);
        let minus = rel(&[([2, 2], 3)]);
        let out = base.signed_apply(&plus, &minus).unwrap();
        assert_eq!(out, rel(&[([1, 1], 5), ([3, 3], 7)]));

        // Cancelling more than is present is unrepresentable in ℕ.
        let too_much = rel(&[([1, 1], 9)]);
        assert!(base.signed_apply(&plus, &too_much).is_none());
        // Cancelling an absent tuple likewise.
        let absent = rel(&[([9, 9], 1)]);
        assert!(base.signed_apply(&plus, &absent).is_none());
    }

    #[test]
    fn signed_apply_aligns_column_order() {
        let base = rel(&[([1, 2], 5)]);
        let plus: Relation<Count> =
            Relation::from_pairs(vec![v(1), v(0)], [(vec![7, 3], Count(2))]);
        let minus = Relation::new(vec![v(1), v(0)]);
        let out = base.signed_apply(&plus, &minus).unwrap();
        assert_eq!(out.get(&[3, 7]), Some(&Count(2)));
    }

    #[test]
    fn gf2_signed_apply_resurrects_cancelled_rows() {
        // Two F₂ contributions xor to zero, so the row is absent from
        // the base; removing one contribution must bring it back.
        let base: Relation<Gf2> = Relation::new(vec![v(0)]);
        let plus: Relation<Gf2> = Relation::new(vec![v(0)]);
        let minus: Relation<Gf2> = Relation::from_pairs(vec![v(0)], [(vec![4], Gf2(true))]);
        let out = base.signed_apply(&plus, &minus).unwrap();
        assert_eq!(out.get(&[4]), Some(&Gf2(true)));
    }

    #[test]
    fn delete_returns_old_value() {
        let mut r = rel(&[([1, 1], 2), ([2, 2], 3)]);
        assert_eq!(r.delete(&[1, 1]), Some(Count(2)));
        assert_eq!(r.delete(&[1, 1]), None);
        assert_eq!(r.len(), 1);
    }
}
