//! The zero-copy columnar shard codec: [`Relation`]s as length-checked
//! wire frames.
//!
//! A frame is the relation's *storage layout* made portable — one
//! little-endian header followed by the row-major `u32` arena and the
//! fixed-width annotation column, bulk-copied section by section with no
//! per-tuple serialization:
//!
//! ```text
//! offset            size   field
//! 0                 4      magic  "FQS1"
//! 4                 2      codec version (1)
//! 6                 2      arity r
//! 8                 4      row count n
//! 12                4      value width W = S::WIRE_VALUE_BYTES
//! 16                4·r    schema variable ids
//! 16 + 4r           4·r·n  arena: row-major u32 tuples, LE
//! 16 + 4r + 4rn     W·n    annotations, W bytes each (absent if W = 0)
//! ```
//!
//! Encode walks the arena once (`u32 → 4 LE bytes`, a chunk loop the
//! compiler lowers to wide copies); decode validates the header against
//! the byte count, rebuilds the columns the same way and hands them to
//! [`Relation::from_columns`] — whose `is_sorted_strict` fast path
//! recognises the canonical order every encoded relation ships in, so a
//! round trip never re-sorts. Zero-width carriers (Boolean, GF(2)) ship
//! presence only and decode every row to `one()`, exactly the listing
//! representation.
//!
//! [`frame_bytes`] / [`frame_bits`] are the *exact* closed-form frame
//! size. `faqs-plan` prices wire legs through the same function, so a
//! predicted wire cost and the bytes a transport actually moves can
//! never drift apart.

use crate::relation::Relation;
use faqs_hypergraph::Var;
use faqs_semiring::Semiring;
use std::fmt;

/// Frame magic: `b"FQS1"` little-endian.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"FQS1");

/// Codec version stamped into (and required of) every frame.
pub const FRAME_VERSION: u16 = 1;

/// Fixed header bytes before the per-schema section.
pub const FRAME_FIXED_BYTES: usize = 16;

/// Exact encoded size in bytes of a frame holding `rows` tuples of
/// `arity` columns with `value_bytes`-wide annotations.
pub fn frame_bytes(arity: usize, rows: u64, value_bytes: usize) -> u64 {
    FRAME_FIXED_BYTES as u64
        + 4 * arity as u64
        + rows.saturating_mul(4 * arity as u64 + value_bytes as u64)
}

/// [`frame_bytes`] in bits — the unit [`faqs_network::RunStats`] and the
/// conformance envelopes account in.
///
/// [`faqs_network::RunStats`]: https://docs.rs/faqs-network
pub fn frame_bits(arity: usize, rows: u64, value_bytes: usize) -> u64 {
    frame_bytes(arity, rows, value_bytes).saturating_mul(8)
}

/// Why a byte slice failed to decode as a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the fixed header.
    Truncated {
        /// Bytes the decoder needed next.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The magic bytes are not `FQS1`.
    BadMagic(u32),
    /// A codec version this build does not speak.
    BadVersion(u16),
    /// The frame's annotation width disagrees with the decoding
    /// semiring's [`Semiring::WIRE_VALUE_BYTES`].
    ValueWidthMismatch {
        /// Width stamped in the frame.
        frame: u32,
        /// Width the decoding semiring requires.
        decoder: u32,
    },
    /// The schema section repeats a variable.
    DuplicateVar(u32),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            CodecError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported codec version {v}"),
            CodecError::ValueWidthMismatch { frame, decoder } => write!(
                f,
                "annotation width mismatch: frame says {frame} bytes, decoder needs {decoder}"
            ),
            CodecError::DuplicateVar(v) => write!(f, "schema repeats variable x{v}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

impl<S: Semiring> Relation<S> {
    /// Exact size in bits of this relation's encoded frame — the number
    /// a real transport charges for shipping it, as opposed to the
    /// Model 2.1 price of [`Relation::bits`].
    pub fn wire_bits(&self) -> u64 {
        frame_bits(self.schema().len(), self.len() as u64, S::WIRE_VALUE_BYTES)
    }

    /// Encodes the relation as one wire frame (see the module docs for
    /// the layout). The arena and annotation column are copied section
    /// by section — no per-tuple work — and the output length is exactly
    /// [`frame_bytes`] of this relation's shape.
    pub fn encode_frame(&self) -> Vec<u8> {
        let arity = self.schema().len();
        let rows = self.len();
        let total = frame_bytes(arity, rows as u64, S::WIRE_VALUE_BYTES);
        let mut out: Vec<u8> = Vec::with_capacity(total as usize);
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
        out.extend_from_slice(&(arity as u16).to_le_bytes());
        out.extend_from_slice(&(rows as u32).to_le_bytes());
        out.extend_from_slice(&(S::WIRE_VALUE_BYTES as u32).to_le_bytes());
        for v in self.schema() {
            out.extend_from_slice(&v.0.to_le_bytes());
        }
        // The arena aliases straight onto the wire: one pass of 4-byte
        // stores the compiler widens, not a tuple/field walk.
        for &w in self.raw_data() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        if S::WIRE_VALUE_BYTES > 0 {
            for v in self.raw_values() {
                v.write_wire(&mut out);
            }
        }
        debug_assert_eq!(out.len() as u64, total);
        out
    }

    /// Decodes one frame back into a relation. Exact inverse of
    /// [`Relation::encode_frame`]: the rebuilt columns re-enter through
    /// [`Relation::from_columns`], whose presorted fast path accepts the
    /// canonical order every encoder ships, so the round trip is
    /// `O(bytes)` with no re-sort. Any size/shape inconsistency is a
    /// [`CodecError`], never a panic.
    pub fn decode_frame(bytes: &[u8]) -> Result<Relation<S>, CodecError> {
        if bytes.len() < FRAME_FIXED_BYTES {
            return Err(CodecError::Truncated {
                expected: FRAME_FIXED_BYTES,
                got: bytes.len(),
            });
        }
        let magic = read_u32(bytes, 0);
        if magic != FRAME_MAGIC {
            return Err(CodecError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("bounds checked"));
        if version != FRAME_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let arity = u16::from_le_bytes(bytes[6..8].try_into().expect("bounds checked")) as usize;
        let rows = read_u32(bytes, 8) as u64;
        let width = read_u32(bytes, 12);
        if width != S::WIRE_VALUE_BYTES as u32 {
            return Err(CodecError::ValueWidthMismatch {
                frame: width,
                decoder: S::WIRE_VALUE_BYTES as u32,
            });
        }
        let total = frame_bytes(arity, rows, S::WIRE_VALUE_BYTES);
        if bytes.len() as u64 != total {
            return Err(CodecError::Truncated {
                expected: total as usize,
                got: bytes.len(),
            });
        }
        let mut schema = Vec::with_capacity(arity);
        for i in 0..arity {
            let id = read_u32(bytes, FRAME_FIXED_BYTES + 4 * i);
            let var = Var(id);
            if schema.contains(&var) {
                return Err(CodecError::DuplicateVar(id));
            }
            schema.push(var);
        }
        let arena_at = FRAME_FIXED_BYTES + 4 * arity;
        let arena_len = (4 * arity as u64 * rows) as usize;
        let data: Vec<u32> = bytes[arena_at..arena_at + arena_len]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("exact chunks")))
            .collect();
        let values: Vec<S> = if S::WIRE_VALUE_BYTES == 0 {
            vec![S::one(); rows as usize]
        } else {
            bytes[arena_at + arena_len..]
                .chunks_exact(S::WIRE_VALUE_BYTES)
                .map(S::read_wire)
                .collect()
        };
        Ok(Relation::from_columns(schema, data, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faqs_semiring::{Boolean, Count};

    fn sample() -> Relation<Count> {
        Relation::from_pairs(
            vec![Var(3), Var(1)],
            [
                (vec![0, 2], Count(5)),
                (vec![1, 0], Count(2)),
                (vec![1, 7], Count(9)),
            ],
        )
    }

    #[test]
    fn round_trip_is_identity_and_exactly_sized() {
        let r = sample();
        let frame = r.encode_frame();
        assert_eq!(frame.len() as u64 * 8, r.wire_bits());
        assert_eq!(Relation::<Count>::decode_frame(&frame).unwrap(), r);
    }

    #[test]
    fn zero_width_carriers_ship_presence_only() {
        let r: Relation<Boolean> = Relation::from_pairs(
            vec![Var(0), Var(1)],
            [(vec![0, 1], Boolean(true)), (vec![2, 3], Boolean(true))],
        );
        let frame = r.encode_frame();
        assert_eq!(
            frame.len() as u64,
            frame_bytes(2, 2, 0),
            "no annotation section"
        );
        assert_eq!(Relation::<Boolean>::decode_frame(&frame).unwrap(), r);
    }

    #[test]
    fn truncation_and_corruption_are_errors_not_panics() {
        let frame = sample().encode_frame();
        for cut in [0, 5, FRAME_FIXED_BYTES, frame.len() - 1] {
            assert!(matches!(
                Relation::<Count>::decode_frame(&frame[..cut]),
                Err(CodecError::Truncated { .. })
            ));
        }
        let mut bad = frame.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            Relation::<Count>::decode_frame(&bad),
            Err(CodecError::BadMagic(_))
        ));
        let mut bad = frame.clone();
        bad[4] = 9;
        assert!(matches!(
            Relation::<Count>::decode_frame(&bad),
            Err(CodecError::BadVersion(9))
        ));
        // A Boolean decoder refuses a Count frame: widths disagree.
        assert!(matches!(
            Relation::<Boolean>::decode_frame(&frame),
            Err(CodecError::ValueWidthMismatch {
                frame: 8,
                decoder: 0
            })
        ));
    }
}
