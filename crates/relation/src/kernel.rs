//! The columnar relational-algebra kernel: flat-arena row utilities,
//! the reusable [`JoinIndex`], and the sort-merge / galloping operator
//! implementations behind [`Relation`](crate::Relation)'s public API.
//!
//! Everything here works on *tuple views* — `&[u32]` slices into a
//! relation's row-major arena — so the steady-state join/semijoin path
//! performs no per-tuple heap allocation: scratch key buffers are
//! reused across rows and output arenas grow in bulk.

use crate::relation::Relation;
use faqs_hypergraph::Var;
use faqs_semiring::Semiring;
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};

/// Kernel comparison mode: `0` = undecided (read `FAQS_KERNEL_SCALAR`
/// on first use), `1` = scalar, `2` = vectorized chunk loops.
static KERNEL_MODE: AtomicU8 = AtomicU8::new(0);

/// Whether the row-comparison hot paths must run their plain scalar
/// loops (`FAQS_KERNEL_SCALAR=1`) instead of the chunked
/// autovectorization-friendly ones. Read once per process; both paths
/// are raced for identity by the CI matrix and the transport bench.
#[inline]
pub(crate) fn kernel_scalar() -> bool {
    match KERNEL_MODE.load(AtomicOrdering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let scalar = std::env::var("FAQS_KERNEL_SCALAR").is_ok_and(|v| v == "1");
            KERNEL_MODE.store(if scalar { 1 } else { 2 }, AtomicOrdering::Relaxed);
            scalar
        }
    }
}

/// Pins the kernel comparison mode in-process, overriding the
/// `FAQS_KERNEL_SCALAR` environment — the hook benches use to race the
/// scalar and vectorized paths against each other in one process.
#[doc(hidden)]
pub fn force_kernel_scalar(scalar: bool) {
    KERNEL_MODE.store(if scalar { 1 } else { 2 }, AtomicOrdering::Relaxed);
}

/// One row of a flat `arity`-strided arena.
#[inline]
pub(crate) fn row(data: &[u32], arity: usize, i: usize) -> &[u32] {
    &data[i * arity..i * arity + arity]
}

/// Chunked lexicographic row comparison: a first-lane early exit (on
/// sorted random data most comparisons are decided by column 0, and
/// that case must cost exactly what the scalar loop pays — one compare,
/// one branch), then a 4-lane XOR/OR equality prescan per chunk (one
/// wide, branch-free test the compiler lowers to SIMD) with the
/// lane-wise resolve paid only by the first differing chunk, and a
/// scalar tail for the remainder. Equivalent to `a.cmp(b)` on
/// equal-length rows.
#[inline]
fn cmp_rows_chunked(a: &[u32], b: &[u32]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    match (a.first(), b.first()) {
        (Some(x), Some(y)) if x != y => return x.cmp(y),
        (None, None) => return Ordering::Equal,
        _ => {}
    }
    let mut i = 1usize;
    while i + 4 <= a.len() {
        let (ca, cb) = (&a[i..i + 4], &b[i..i + 4]);
        let diff = (ca[0] ^ cb[0]) | (ca[1] ^ cb[1]) | (ca[2] ^ cb[2]) | (ca[3] ^ cb[3]);
        if diff != 0 {
            return ca.cmp(cb);
        }
        i += 4;
    }
    a[i..].cmp(&b[i..])
}

/// Row equality: the same first-lane early exit as
/// [`cmp_rows_chunked`], then one branch-free XOR/OR reduction over the
/// remaining lanes — rows sharing a first column are compared with one
/// wide pass, and mismatching rows (the probe-miss fast path) cost a
/// single compare.
#[inline]
fn rows_eq_chunked(a: &[u32], b: &[u32]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    if let (Some(x), Some(y)) = (a.first(), b.first()) {
        if x != y {
            return false;
        }
    }
    a.iter().zip(b).fold(0u32, |acc, (x, y)| acc | (x ^ y)) == 0
}

/// Lexicographic comparison of the projections of two rows onto `pos`.
#[inline]
fn cmp_projected(a: &[u32], b: &[u32], pos: &[usize]) -> Ordering {
    for &p in pos {
        match a[p].cmp(&b[p]) {
            Ordering::Equal => {}
            o => return o,
        }
    }
    Ordering::Equal
}

/// Compares the projection of `t` onto `pos` against a materialised key.
#[inline]
fn cmp_key(t: &[u32], pos: &[usize], key: &[u32]) -> Ordering {
    for (&p, &k) in pos.iter().zip(key) {
        match t[p].cmp(&k) {
            Ordering::Equal => {}
            o => return o,
        }
    }
    Ordering::Equal
}

/// Binary search for `tuple` among the `n` sorted rows of an
/// `arity`-strided arena: `Ok(row)` on a hit, `Err(insertion_row)`
/// otherwise. Shared by [`Relation::get`]/`insert` and the multi-column
/// key search of [`JoinIndex::group_of`].
pub(crate) fn binary_search_row(
    data: &[u32],
    arity: usize,
    n: usize,
    tuple: &[u32],
) -> Result<usize, usize> {
    if kernel_scalar() {
        binary_search_row_by(data, arity, n, tuple, |a, b| a.cmp(b))
    } else {
        binary_search_row_by(data, arity, n, tuple, cmp_rows_chunked)
    }
}

#[inline]
fn binary_search_row_by(
    data: &[u32],
    arity: usize,
    n: usize,
    tuple: &[u32],
    cmp: impl Fn(&[u32], &[u32]) -> Ordering,
) -> Result<usize, usize> {
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match cmp(row(data, arity, mid), tuple) {
            Ordering::Less => lo = mid + 1,
            Ordering::Greater => hi = mid,
            Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// Canonicalises a freshly gathered arena: sorts rows lexicographically,
/// `combine`-accumulates duplicate rows, and drops rows whose combined
/// annotation is the semiring zero. This is the single sort behind
/// `from_pairs`, `union_all`, `reorder` and the general projection path —
/// no intermediate `HashMap` is ever built.
pub(crate) fn sort_merge_rows<S: Semiring>(
    arity: usize,
    data: Vec<u32>,
    values: Vec<S>,
    mut combine: impl FnMut(&mut S, &S),
) -> (Vec<u32>, Vec<S>) {
    let n = values.len();
    if arity == 0 {
        // Every row is the empty tuple: fold all annotations into one.
        let mut it = values.into_iter();
        let Some(mut acc) = it.next() else {
            return (Vec::new(), Vec::new());
        };
        for v in it {
            combine(&mut acc, &v);
        }
        return if acc.is_zero() {
            (Vec::new(), Vec::new())
        } else {
            (Vec::new(), vec![acc])
        };
    }

    if is_sorted_strict(&data, arity, n) {
        // Already canonical: no sort, no copy — at most one zero sweep.
        let (mut data, mut values) = (data, values);
        if values.iter().any(S::is_zero) {
            compact_zeros(arity, &mut data, &mut values);
        }
        return (data, values);
    }

    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        row(&data, arity, a as usize).cmp(row(&data, arity, b as usize))
    });

    let mut out_data: Vec<u32> = Vec::with_capacity(data.len());
    let mut out_values: Vec<S> = Vec::with_capacity(n);
    let mut any_zero = false;
    for &i in &order {
        let r = row(&data, arity, i as usize);
        if let Some(last) = out_values.last_mut() {
            if &out_data[out_data.len() - arity..] == r {
                combine(last, &values[i as usize]);
                any_zero |= last.is_zero();
                continue;
            }
        }
        out_data.extend_from_slice(r);
        let v = values[i as usize].clone();
        any_zero |= v.is_zero();
        out_values.push(v);
    }
    if any_zero {
        compact_zeros(arity, &mut out_data, &mut out_values);
    }
    (out_data, out_values)
}

/// Whether the arena's rows are already strictly increasing (sorted and
/// duplicate-free) — the fast path that lets pre-sorted construction
/// (e.g. `Relation::full`, the brute-force enumeration) skip the sort.
fn is_sorted_strict(data: &[u32], arity: usize, n: usize) -> bool {
    (1..n).all(|i| row(data, arity, i - 1) < row(data, arity, i))
}

/// Removes rows annotated with the semiring zero, in place.
pub(crate) fn compact_zeros<S: Semiring>(arity: usize, data: &mut Vec<u32>, values: &mut Vec<S>) {
    let mut kept = 0usize;
    for i in 0..values.len() {
        if values[i].is_zero() {
            continue;
        }
        if kept != i {
            values.swap(kept, i);
            data.copy_within(i * arity..(i + 1) * arity, kept * arity);
        }
        kept += 1;
    }
    values.truncate(kept);
    data.truncate(kept * arity);
}

/// A sorted index of one relation's rows grouped by a key — the join
/// key's answer to "which rows carry this key value?".
///
/// Built once per factor (O(n log n), or O(n) when the key is a schema
/// prefix of the already-sorted arena) and reused across every probe:
/// the Yannakakis passes build one index per factor per pass, and the
/// engine's upward messages index each factor exactly once per join
/// instead of rehashing it per operation.
///
/// The index is self-contained (it copies the group keys out of the
/// relation), so it stays valid even if the indexed relation is later
/// replaced — but it describes the relation *as it was at build time*.
#[derive(Clone, Debug)]
pub struct JoinIndex {
    key_vars: Vec<Var>,
    key_arity: usize,
    /// Flattened group keys, `num_groups × key_arity`, sorted.
    keys: Vec<u32>,
    /// Row ids grouped by key; within a group, ascending (= canonical
    /// order of the indexed relation, which sorts each group by its
    /// non-key columns — exactly the order a join must emit them in).
    row_ids: Vec<u32>,
    /// Group boundaries into `row_ids`, `num_groups + 1` entries.
    offsets: Vec<u32>,
}

impl JoinIndex {
    /// Indexes `rel` by the projection onto `key_vars` (a subset of the
    /// schema, in any order).
    pub fn build<S: Semiring>(rel: &Relation<S>, key_vars: &[Var]) -> JoinIndex {
        let pos = rel.positions(key_vars);
        let key_arity = pos.len();
        let n = rel.len();

        let mut row_ids: Vec<u32> = (0..n as u32).collect();
        // When the key is a prefix of the schema the canonical sort
        // already groups equal keys contiguously; skip the sort.
        let is_prefix = pos.iter().enumerate().all(|(i, &p)| p == i);
        if !is_prefix {
            row_ids.sort_unstable_by(|&a, &b| {
                let ta = rel.tuple_at(a as usize);
                let tb = rel.tuple_at(b as usize);
                cmp_projected(ta, tb, &pos).then(a.cmp(&b))
            });
        }

        // An empty relation has zero groups (offsets stays `[0]`); a
        // zero-arity key over a non-empty relation has exactly one.
        let mut keys: Vec<u32> = Vec::new();
        let mut offsets: Vec<u32> = vec![0];
        if n > 0 {
            if key_arity > 0 {
                for (slot, &i) in row_ids.iter().enumerate() {
                    let t = rel.tuple_at(i as usize);
                    let new_group = keys.is_empty()
                        || cmp_key(t, &pos, &keys[keys.len() - key_arity..]) != Ordering::Equal;
                    if new_group {
                        if !keys.is_empty() {
                            offsets.push(slot as u32);
                        }
                        keys.extend(pos.iter().map(|&p| t[p]));
                    }
                }
            }
            offsets.push(n as u32);
        }
        JoinIndex {
            key_vars: key_vars.to_vec(),
            key_arity,
            keys,
            row_ids,
            offsets,
        }
    }

    /// The key variables this index groups by, in key order.
    #[inline]
    pub fn key_vars(&self) -> &[Var] {
        &self.key_vars
    }

    /// Number of distinct key values.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total indexed rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.row_ids.len()
    }

    #[inline]
    fn group_rows(&self, g: usize) -> &[u32] {
        &self.row_ids[self.offsets[g] as usize..self.offsets[g + 1] as usize]
    }

    /// The group holding `key`, by binary search over the sorted keys.
    /// Single-column keys (the overwhelmingly common join key) search
    /// the flat `u32` key array directly, skipping per-probe slice
    /// chunking.
    pub fn group_of(&self, key: &[u32]) -> Option<usize> {
        assert_eq!(key.len(), self.key_arity, "key arity mismatch");
        if self.num_rows() == 0 {
            return None;
        }
        if self.key_arity == 0 {
            return Some(0);
        }
        if self.key_arity == 1 {
            return self.keys.binary_search(&key[0]).ok();
        }
        binary_search_row(&self.keys, self.key_arity, self.num_groups(), key).ok()
    }

    /// The row ids carrying `key` (ascending), or `None`.
    #[inline]
    pub fn lookup(&self, key: &[u32]) -> Option<&[u32]> {
        self.group_of(key).map(|g| self.group_rows(g))
    }

    /// Whether any row carries `key`.
    #[inline]
    pub fn contains(&self, key: &[u32]) -> bool {
        self.group_of(key).is_some()
    }

    /// Probes the index with *many* keys in one galloping sweep.
    ///
    /// `probes` is a flat `key_arity`-strided arena of probe keys that
    /// must be sorted ascending (duplicates allowed). Because both the
    /// probe run and the group keys are sorted, a single merge with
    /// exponential (galloping) advance visits each side once:
    /// `O(k·log(g/k))` comparisons for `k` probes against `g` groups,
    /// instead of `k` independent `O(log g)` binary searches — the batch
    /// analogue of [`JoinIndex::lookup`] that cross-query batching uses
    /// to probe one factor for every binding of a batch at once.
    ///
    /// Calls `on_hit(probe_index, rows)` for every probe key present in
    /// the index, in ascending probe order; `rows` are the matching row
    /// ids, ascending (canonical relation order within the group).
    pub fn lookup_many(&self, probes: &[u32], mut on_hit: impl FnMut(usize, &[u32])) {
        let ka = self.key_arity;
        assert!(
            ka > 0 && probes.len().is_multiple_of(ka),
            "probe arena must be non-empty-keyed and {ka}-strided"
        );
        let n_probes = probes.len() / ka;
        debug_assert!(
            (1..n_probes).all(|i| probes[(i - 1) * ka..i * ka] <= probes[i * ka..(i + 1) * ka]),
            "probe keys must be sorted ascending"
        );
        let eq: fn(&[u32], &[u32]) -> bool = if kernel_scalar() {
            |a, b| a == b
        } else {
            rows_eq_chunked
        };
        let n_groups = self.num_groups();
        let mut g = 0usize;
        let mut hit = false;
        for p in 0..n_probes {
            let key = &probes[p * ka..(p + 1) * ka];
            // A probe equal to its predecessor reuses the previous
            // verdict outright: the previous hit position is the gallop
            // floor *and* ceiling, so neither the gallop nor the key
            // compare runs again — duplicate-heavy batches (Zipfian
            // bindings from cross-query batching) pay one search per
            // *distinct* key.
            if p > 0 && eq(key, &probes[(p - 1) * ka..p * ka]) {
                if hit {
                    on_hit(p, self.group_rows(g));
                }
                continue;
            }
            g = gallop_rows(&self.keys, ka, g, n_groups, key);
            if g == n_groups {
                return;
            }
            hit = eq(&self.keys[g * ka..(g + 1) * ka], key);
            if hit {
                on_hit(p, self.group_rows(g));
            }
        }
    }
}

/// Galloping (exponential + binary) search over a flat `arity`-strided
/// sorted arena: the least `i ≥ lo` with `row(i) ≥ target`, or `n`.
fn gallop_rows(data: &[u32], arity: usize, lo: usize, n: usize, target: &[u32]) -> usize {
    if kernel_scalar() {
        gallop_rows_by(data, arity, lo, n, target, |a, b| a.cmp(b))
    } else {
        gallop_rows_by(data, arity, lo, n, target, cmp_rows_chunked)
    }
}

#[inline]
fn gallop_rows_by(
    data: &[u32],
    arity: usize,
    mut lo: usize,
    n: usize,
    target: &[u32],
    cmp: impl Fn(&[u32], &[u32]) -> Ordering,
) -> usize {
    if lo >= n || cmp(row(data, arity, lo), target) != Ordering::Less {
        return lo;
    }
    let mut step = 1usize;
    let mut hi = lo + 1;
    while hi < n && cmp(row(data, arity, hi), target) == Ordering::Less {
        lo = hi;
        step <<= 1;
        hi = (lo + step).min(n);
    }
    // Invariant: row(lo) < target ≤ row(hi) (or hi == n).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if cmp(row(data, arity, mid), target) == Ordering::Less {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Natural join against a prebuilt index of `other` (keyed on exactly
/// the shared variables). Output rows are emitted left-row-major with
/// each group's matches in ascending row-id order, which keeps the
/// result in canonical sorted order without a re-sort.
pub(crate) fn join_via<S: Semiring>(
    left: &Relation<S>,
    other: &Relation<S>,
    idx: &JoinIndex,
) -> Relation<S> {
    join_via_partitioned(left, other, idx, 1)
}

/// [`join_via`] with the probe side partitioned across `threads`
/// `std::thread::scope` workers. `left` is canonically sorted, so a
/// contiguous row range is a key range: each worker runs the identical
/// probe loop over its range into a private arena, and the arenas
/// concatenate back in range order — bit-for-bit the sequential output,
/// no re-sort, no locks. Degenerate cases (one thread, small inputs)
/// stay on the single-threaded path.
pub(crate) fn join_via_partitioned<S: Semiring>(
    left: &Relation<S>,
    other: &Relation<S>,
    idx: &JoinIndex,
    threads: usize,
) -> Relation<S> {
    assert_keyed_on_shared(left, other, idx);
    let my_pos = left.positions(idx.key_vars());
    let fresh: Vec<Var> = other
        .schema()
        .iter()
        .copied()
        .filter(|v| !left.schema().contains(v))
        .collect();
    let fresh_pos = other.positions(&fresh);

    let mut schema: Vec<Var> = left.schema().to_vec();
    schema.extend(fresh.iter().copied());
    let mut out = Relation::new(schema);

    let threads = threads.clamp(1, left.len().max(1));
    if threads == 1 {
        let (out_data, out_values) = out.parts_mut();
        join_range(
            left,
            other,
            idx,
            &my_pos,
            &fresh_pos,
            0..left.len(),
            out_data,
            out_values,
        );
        return out;
    }

    let chunk = left.len().div_ceil(threads);
    let ranges: Vec<std::ops::Range<usize>> = (0..threads)
        .map(|t| (t * chunk).min(left.len())..((t + 1) * chunk).min(left.len()))
        .filter(|r| !r.is_empty())
        .collect();
    let parts: Vec<(Vec<u32>, Vec<S>)> = std::thread::scope(|s| {
        // Spawn all but the last range; the calling thread works the
        // last one instead of idling in the joins.
        let (spawned, inline) = ranges.split_at(ranges.len() - 1);
        let handles: Vec<_> = spawned
            .iter()
            .cloned()
            .map(|range| {
                let (my_pos, fresh_pos) = (&my_pos, &fresh_pos);
                s.spawn(move || {
                    let mut data = Vec::new();
                    let mut values = Vec::new();
                    join_range(
                        left,
                        other,
                        idx,
                        my_pos,
                        fresh_pos,
                        range,
                        &mut data,
                        &mut values,
                    );
                    (data, values)
                })
            })
            .collect();
        let mut last = (Vec::new(), Vec::new());
        join_range(
            left,
            other,
            idx,
            &my_pos,
            &fresh_pos,
            inline[0].clone(),
            &mut last.0,
            &mut last.1,
        );
        let mut parts: Vec<(Vec<u32>, Vec<S>)> = handles
            .into_iter()
            .map(|h| h.join().expect("join worker"))
            .collect();
        parts.push(last);
        parts
    });
    let (out_data, out_values) = out.parts_mut();
    out_data.reserve(parts.iter().map(|(d, _)| d.len()).sum());
    out_values.reserve(parts.iter().map(|(_, v)| v.len()).sum());
    for (d, v) in parts {
        out_data.extend_from_slice(&d);
        out_values.extend(v);
    }
    out
}

/// The probe loop of the indexed join over one contiguous row range of
/// `left`, appending to the caller's arena.
#[allow(clippy::too_many_arguments)]
fn join_range<S: Semiring>(
    left: &Relation<S>,
    other: &Relation<S>,
    idx: &JoinIndex,
    my_pos: &[usize],
    fresh_pos: &[usize],
    range: std::ops::Range<usize>,
    out_data: &mut Vec<u32>,
    out_values: &mut Vec<S>,
) {
    let mut key = vec![0u32; my_pos.len()];
    for i in range {
        let t = left.tuple_at(i);
        for (k, &p) in key.iter_mut().zip(my_pos) {
            *k = t[p];
        }
        let Some(rows) = idx.lookup(&key) else {
            continue;
        };
        let v = left.value_at(i);
        for &j in rows {
            let u = other.tuple_at(j as usize);
            let prod = v.mul(other.value_at(j as usize));
            if prod.is_zero() {
                continue;
            }
            out_data.extend_from_slice(t);
            out_data.extend(fresh_pos.iter().map(|&p| u[p]));
            out_values.push(prod);
        }
    }
}

/// A prebuilt index fed to a join/semijoin must key on *exactly* the
/// variables the two relations share — a partial key would silently
/// under-filter (semijoin) or emit rows disagreeing on the unchecked
/// shared variable (join). Cheap (O(r²) on arities ≤ a handful), so it
/// runs in release builds too.
fn assert_keyed_on_shared<S: Semiring>(left: &Relation<S>, other: &Relation<S>, idx: &JoinIndex) {
    let shared = left.shared_vars(other);
    assert!(
        idx.key_vars().len() == shared.len() && shared.iter().all(|v| idx.key_vars().contains(v)),
        "index keyed on {:?}, but the relations share {shared:?}",
        idx.key_vars()
    );
}

/// Semijoin `left ⋉ other` against a prebuilt index of `other` keyed on
/// the shared variables: keeps `left`'s rows (annotations untouched)
/// whose key projection appears in the index. Order-preserving.
pub(crate) fn semijoin_via<S: Semiring>(
    left: &Relation<S>,
    other: &Relation<S>,
    idx: &JoinIndex,
) -> Relation<S> {
    assert_keyed_on_shared(left, other, idx);
    let my_pos = left.positions(idx.key_vars());
    let mut out = Relation::new(left.schema().to_vec());
    let (out_data, out_values) = out.parts_mut();
    let mut key = vec![0u32; my_pos.len()];
    for i in 0..left.len() {
        let t = left.tuple_at(i);
        for (k, &p) in key.iter_mut().zip(&my_pos) {
            *k = t[p];
        }
        if idx.contains(&key) {
            out_data.extend_from_slice(t);
            out_values.push(left.value_at(i).clone());
        }
    }
    out
}

/// Semijoin in the *probed* direction: given `own_idx` (an index of
/// `this` itself), keeps the rows of `this` whose key group is hit by
/// at least one row of `other`. Semantically `this ⋉ other`, but the
/// index lives on the filtered side — so a relation filtered against
/// several others (the Yannakakis downward pass) is indexed once.
pub(crate) fn semijoin_probe<S: Semiring>(
    this: &Relation<S>,
    own_idx: &JoinIndex,
    other: &Relation<S>,
) -> Relation<S> {
    assert_keyed_on_shared(this, other, own_idx);
    let other_pos = other.positions(own_idx.key_vars());
    let mut hit = vec![false; own_idx.num_groups()];
    let mut remaining = own_idx.num_groups();
    let mut key = vec![0u32; other_pos.len()];
    for j in 0..other.len() {
        let u = other.tuple_at(j);
        for (k, &p) in key.iter_mut().zip(&other_pos) {
            *k = u[p];
        }
        if let Some(g) = own_idx.group_of(&key) {
            if !hit[g] {
                hit[g] = true;
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
        }
    }
    // Gather surviving row ids; groups are key-sorted, not row-sorted,
    // so re-sort the ids to restore canonical order.
    let mut keep: Vec<u32> = (0..own_idx.num_groups())
        .filter(|&g| hit[g])
        .flat_map(|g| own_idx.group_rows(g).iter().copied())
        .collect();
    keep.sort_unstable();
    let mut out = Relation::new(this.schema().to_vec());
    let (out_data, out_values) = out.parts_mut();
    for &i in &keep {
        out_data.extend_from_slice(this.tuple_at(i as usize));
        out_values.push(this.value_at(i as usize).clone());
    }
    out
}

/// Projection with `combine`-aggregation of collapsed rows. When `pos`
/// is a schema prefix the canonical order already groups equal keys
/// contiguously and a single merge scan suffices; otherwise the
/// projected rows are gathered and canonicalised with one sort.
pub(crate) fn project_with<S: Semiring>(
    rel: &Relation<S>,
    vars: &[Var],
    pos: &[usize],
    mut combine: impl FnMut(&mut S, &S),
) -> Relation<S> {
    let k = pos.len();
    let mut out = Relation::new(vars.to_vec());
    let is_prefix = pos.iter().enumerate().all(|(i, &p)| p == i);
    if is_prefix {
        let (out_data, out_values) = out.parts_mut();
        let mut any_zero = false;
        for i in 0..rel.len() {
            let t = rel.tuple_at(i);
            let keyed = &t[..k];
            if let Some(last) = out_values.last_mut() {
                if &out_data[out_data.len() - k..] == keyed {
                    combine(last, rel.value_at(i));
                    any_zero |= last.is_zero();
                    continue;
                }
            }
            out_data.extend_from_slice(keyed);
            let v = rel.value_at(i).clone();
            any_zero |= v.is_zero();
            out_values.push(v);
        }
        if any_zero {
            let arity = k;
            compact_zeros(arity, out_data, out_values);
        }
        return out;
    }

    let mut data: Vec<u32> = Vec::with_capacity(rel.len() * k);
    let mut values: Vec<S> = Vec::with_capacity(rel.len());
    for i in 0..rel.len() {
        let t = rel.tuple_at(i);
        data.extend(pos.iter().map(|&p| t[p]));
        values.push(rel.value_at(i).clone());
    }
    let (data, values) = sort_merge_rows(k, data, values, combine);
    out.set_parts(data, values);
    out
}

/// Galloping (exponential + binary) search: the least `i ≥ lo` with
/// `row(i) ≥ target`, over a sorted arena.
fn gallop<S: Semiring>(rel: &Relation<S>, mut lo: usize, target: &[u32]) -> usize {
    let n = rel.len();
    if lo >= n || rel.tuple_at(lo) >= target {
        return lo;
    }
    let mut step = 1usize;
    let mut hi = lo + 1;
    while hi < n && rel.tuple_at(hi) < target {
        lo = hi;
        step <<= 1;
        hi = (lo + step).min(n);
    }
    // Invariant: row(lo) < target ≤ row(hi) (or hi == n).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if rel.tuple_at(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Pointwise `⊗`-product of two same-schema relations by a galloping
/// merge over the two sorted arenas (tuple intersection).
pub(crate) fn merge_product<S: Semiring>(a: &Relation<S>, b: &Relation<S>) -> Relation<S> {
    let mut out = Relation::new(a.schema().to_vec());
    let (out_data, out_values) = out.parts_mut();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a.tuple_at(i).cmp(b.tuple_at(j)) {
            Ordering::Less => i = gallop(a, i, b.tuple_at(j)),
            Ordering::Greater => j = gallop(b, j, a.tuple_at(i)),
            Ordering::Equal => {
                let prod = a.value_at(i).mul(b.value_at(j));
                if !prod.is_zero() {
                    out_data.extend_from_slice(a.tuple_at(i));
                    out_values.push(prod);
                }
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Signed three-way merge `base ⊕ plus ⊖ minus` over three same-schema
/// sorted arenas, in one linear pass. Absent tuples count as zero on
/// every side (a `minus` hit on an absent tuple asks the semiring to
/// cancel out of zero — exact in F₂, a refusal in ℕ). Returns the new
/// canonical arena, or `None` as soon as one [`Semiring::checked_sub`]
/// cannot represent its cancellation.
pub(crate) fn merge_signed<S: Semiring>(
    base: &Relation<S>,
    plus: &Relation<S>,
    minus: &Relation<S>,
) -> Option<(Vec<u32>, Vec<S>)> {
    debug_assert_eq!(base.schema(), plus.schema());
    debug_assert_eq!(base.schema(), minus.schema());
    let (nb, np, nm) = (base.len(), plus.len(), minus.len());
    let mut data: Vec<u32> = Vec::with_capacity((nb + np) * base.schema().len());
    let mut values: Vec<S> = Vec::with_capacity(nb + np);
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < nb || j < np || k < nm {
        // Smallest tuple among the three fronts.
        let mut t: &[u32] = &[];
        let mut have = false;
        if i < nb {
            t = base.tuple_at(i);
            have = true;
        }
        if j < np {
            let u = plus.tuple_at(j);
            if !have || u < t {
                t = u;
            }
            have = true;
        }
        if k < nm {
            let u = minus.tuple_at(k);
            if !have || u < t {
                t = u;
            }
        }
        let mut v = S::zero();
        if i < nb && base.tuple_at(i) == t {
            v = base.value_at(i).clone();
            i += 1;
        }
        if j < np && plus.tuple_at(j) == t {
            v.add_assign(plus.value_at(j));
            j += 1;
        }
        if k < nm && minus.tuple_at(k) == t {
            v = v.checked_sub(minus.value_at(k))?;
            k += 1;
        }
        if !v.is_zero() {
            data.extend_from_slice(t);
            values.push(v);
        }
    }
    Some((data, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use faqs_semiring::Count;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn rel(schema: &[u32], rows: &[(&[u32], u64)]) -> Relation<Count> {
        Relation::from_pairs(
            schema.iter().map(|i| v(*i)).collect(),
            rows.iter().map(|(t, c)| (t.to_vec(), Count(*c))),
        )
    }

    #[test]
    fn index_groups_and_lookup() {
        let r = rel(
            &[0, 1],
            &[(&[1, 5], 1), (&[2, 3], 1), (&[2, 7], 1), (&[4, 0], 1)],
        );
        let idx = JoinIndex::build(&r, &[v(0)]);
        assert_eq!(idx.num_groups(), 3);
        assert_eq!(idx.lookup(&[2]), Some(&[1u32, 2][..]));
        assert_eq!(idx.lookup(&[3]), None);
        assert!(idx.contains(&[4]));
    }

    #[test]
    fn index_on_non_prefix_key() {
        let r = rel(&[0, 1], &[(&[1, 5], 1), (&[2, 5], 1), (&[3, 4], 1)]);
        let idx = JoinIndex::build(&r, &[v(1)]);
        assert_eq!(idx.num_groups(), 2);
        assert_eq!(idx.lookup(&[5]), Some(&[0u32, 1][..]));
        assert_eq!(idx.lookup(&[4]), Some(&[2u32][..]));
    }

    #[test]
    fn nullary_key_groups_everything() {
        let r = rel(&[0], &[(&[1], 1), (&[2], 1)]);
        let idx = JoinIndex::build(&r, &[]);
        assert_eq!(idx.num_groups(), 1);
        assert_eq!(idx.lookup(&[]), Some(&[0u32, 1][..]));
        let empty = rel(&[0], &[]);
        let idx = JoinIndex::build(&empty, &[]);
        assert_eq!(idx.num_groups(), 0, "empty relation has no key groups");
        assert_eq!(idx.lookup(&[]), None);
        let idx = JoinIndex::build(&empty, &[v(0)]);
        assert_eq!(idx.num_groups(), 0);
        assert_eq!(idx.lookup(&[3]), None);
    }

    #[test]
    fn sort_merge_accumulates_and_drops_zeros() {
        // Rows [2],[1],[2],[1]: duplicates ⊕-collapse after one sort.
        let data = vec![2, 1, 2, 1];
        let values = vec![Count(1), Count(2), Count(3), Count(4)];
        let (d, vals) = sort_merge_rows(1, data, values, |a, b| a.add_assign(b));
        assert_eq!(d, vec![1, 2]);
        assert_eq!(vals, vec![Count(6), Count(4)]);
        // A row whose accumulated value is zero is dropped.
        let (d, vals) = sort_merge_rows(
            1,
            vec![7, 8],
            vec![Count(0), Count(5)],
            |a: &mut Count, b| a.add_assign(b),
        );
        assert_eq!(d, vec![8]);
        assert_eq!(vals, vec![Count(5)]);
    }

    #[test]
    fn nullary_sort_merge_folds_all() {
        let (d, vals) = sort_merge_rows(
            0,
            vec![],
            vec![Count(1), Count(2), Count(3)],
            |a: &mut Count, b| a.add_assign(b),
        );
        assert!(d.is_empty());
        assert_eq!(vals, vec![Count(6)]);
    }

    #[test]
    fn lookup_many_matches_per_key_lookup() {
        let r = rel(
            &[0, 1],
            &[
                (&[1, 5], 1),
                (&[2, 3], 1),
                (&[2, 7], 1),
                (&[4, 0], 1),
                (&[9, 9], 1),
            ],
        );
        let idx = JoinIndex::build(&r, &[v(0)]);
        // Sorted probes with a duplicate, a miss below, between, above.
        let probes = [0u32, 2, 2, 3, 4, 11];
        let mut hits: Vec<(usize, Vec<u32>)> = Vec::new();
        idx.lookup_many(&probes, |p, rows| hits.push((p, rows.to_vec())));
        let mut expect: Vec<(usize, Vec<u32>)> = Vec::new();
        for (p, key) in probes.iter().enumerate() {
            if let Some(rows) = idx.lookup(&[*key]) {
                expect.push((p, rows.to_vec()));
            }
        }
        assert_eq!(hits, expect);
    }

    #[test]
    fn lookup_many_reuses_verdicts_across_duplicate_keys() {
        // Zipf-shaped probe batches: long runs of consecutive duplicate
        // keys — duplicate hits, duplicate misses (below, between and
        // above the key range), and a duplicate run on the final key.
        // Pins the duplicate fast path (one gallop + one compare per
        // *distinct* key) to the per-key oracle.
        let r = rel(
            &[0, 1],
            &[
                (&[2, 0], 1),
                (&[2, 9], 1),
                (&[5, 1], 1),
                (&[8, 3], 1),
                (&[8, 4], 1),
            ],
        );
        let idx = JoinIndex::build(&r, &[v(0)]);
        let probes = [0u32, 0, 0, 2, 2, 2, 2, 3, 3, 5, 5, 5, 7, 7, 8, 8, 8, 9, 9];
        let mut hits: Vec<(usize, Vec<u32>)> = Vec::new();
        idx.lookup_many(&probes, |p, rows| hits.push((p, rows.to_vec())));
        let expect: Vec<(usize, Vec<u32>)> = probes
            .iter()
            .enumerate()
            .filter_map(|(p, key)| idx.lookup(&[*key]).map(|rows| (p, rows.to_vec())))
            .collect();
        assert_eq!(hits, expect);

        // Multi-column duplicates exercise the chunked equality too.
        let r = rel(
            &[0, 1, 2],
            &[(&[1, 1, 0], 1), (&[1, 2, 5], 1), (&[2, 1, 3], 1)],
        );
        let idx = JoinIndex::build(&r, &[v(0), v(1)]);
        let probes = [1u32, 1, 1, 1, 1, 1, 1, 2, 1, 2, 2, 1, 2, 1, 2, 9, 2, 9];
        let mut hits: Vec<(usize, Vec<u32>)> = Vec::new();
        idx.lookup_many(&probes, |p, rows| hits.push((p, rows.to_vec())));
        let expect: Vec<(usize, Vec<u32>)> = probes
            .chunks(2)
            .enumerate()
            .filter_map(|(p, key)| idx.lookup(key).map(|rows| (p, rows.to_vec())))
            .collect();
        assert_eq!(hits, expect);
    }

    #[test]
    fn chunked_row_comparison_matches_scalar() {
        // Wide rows hit the 4-lane chunks; equal prefixes force the
        // prescan through multiple chunks before the difference.
        let cases: &[(&[u32], &[u32])] = &[
            (&[], &[]),
            (&[1], &[2]),
            (&[3, 4, 5], &[3, 4, 5]),
            (&[1, 2, 3, 4, 5], &[1, 2, 3, 4, 5]),
            (&[1, 2, 3, 4, 5], &[1, 2, 3, 4, 6]),
            (&[1, 2, 3, 4, 0, 0, 0, 9], &[1, 2, 3, 4, 0, 0, 0, 8]),
            (&[9, 2, 3, 4], &[1, 2, 3, 4]),
            (&[1, 2, 3, 4, 5, 6, 7, 8, 9], &[1, 2, 3, 4, 5, 6, 7, 8, 9]),
        ];
        for (a, b) in cases {
            assert_eq!(cmp_rows_chunked(a, b), a.cmp(b), "{a:?} vs {b:?}");
            assert_eq!(cmp_rows_chunked(b, a), b.cmp(a), "{b:?} vs {a:?}");
            assert_eq!(rows_eq_chunked(a, b), a == b);
        }
    }

    #[test]
    fn lookup_many_on_multi_column_keys() {
        let r = rel(
            &[0, 1, 2],
            &[(&[1, 1, 0], 1), (&[1, 2, 5], 1), (&[2, 1, 3], 1)],
        );
        let idx = JoinIndex::build(&r, &[v(0), v(1)]);
        let probes = [1u32, 1, 1, 2, 2, 1, 3, 3];
        let mut hits = Vec::new();
        idx.lookup_many(&probes, |p, rows| hits.push((p, rows.to_vec())));
        assert_eq!(hits, vec![(0, vec![0]), (1, vec![1]), (2, vec![2])]);
        // Empty index: no hits, no panic.
        let empty = rel(&[0, 1, 2], &[]);
        let idx = JoinIndex::build(&empty, &[v(0), v(1)]);
        idx.lookup_many(&probes, |_, _| panic!("no rows to hit"));
    }

    #[test]
    fn gallop_finds_first_geq() {
        let r = rel(&[0], &[(&[1], 1), (&[3], 1), (&[5], 1), (&[9], 1)]);
        assert_eq!(gallop(&r, 0, &[0]), 0);
        assert_eq!(gallop(&r, 0, &[3]), 1);
        assert_eq!(gallop(&r, 0, &[4]), 2);
        assert_eq!(gallop(&r, 0, &[10]), 4);
    }
}
