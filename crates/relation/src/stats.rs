//! One-pass relation statistics for the cost-based planner.
//!
//! The planner (`faqs-plan`) estimates join and message cardinalities
//! from three per-relation quantities: the listing size, the number of
//! distinct values per column, and the number of distinct *key
//! prefixes* (the selectivity of the prefix-keyed [`JoinIndex`]
//! fast path). All three are gathered in a single pass over the
//! canonical sorted arena: prefix counts fall out of comparing each row
//! with its predecessor (equal prefixes are contiguous in a
//! lexicographically sorted arena), and per-column distinct counts come
//! from one small value-set per column filled during the same sweep.
//!
//! [`JoinIndex`]: crate::kernel::JoinIndex

use crate::delta::AppliedDelta;
use crate::relation::Relation;
use faqs_hypergraph::Var;
use faqs_semiring::Semiring;
use std::collections::{HashMap, HashSet};

/// Per-relation statistics in the planner's vocabulary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationStats {
    /// The schema the statistics describe, in tuple order.
    pub schema: Vec<Var>,
    /// Listing size `|R_e|` (the paper's per-factor `N`).
    pub rows: usize,
    /// Distinct values per column, parallel to `schema`.
    pub distinct: Vec<usize>,
    /// Distinct projections onto the schema prefix of length `i + 1` —
    /// `prefix_distinct[0] == distinct[0]`, and the last entry equals
    /// `rows` (rows are duplicate-free).
    pub prefix_distinct: Vec<usize>,
}

impl RelationStats {
    /// The distinct count of variable `v`, if it is in the schema.
    pub fn distinct_of(&self, v: Var) -> Option<usize> {
        self.schema
            .iter()
            .position(|w| *w == v)
            .map(|i| self.distinct[i])
    }

    /// Average rows per distinct key of the schema prefix of length
    /// `len` (clamped to the arity) — the expected group size a
    /// prefix-keyed join probe hits.
    pub fn prefix_selectivity(&self, len: usize) -> f64 {
        let len = len.min(self.prefix_distinct.len());
        if len == 0 || self.rows == 0 {
            return self.rows as f64;
        }
        let groups = self.prefix_distinct[len - 1].max(1);
        self.rows as f64 / groups as f64
    }

    /// The heaviest per-column skew: `rows / min_v distinct(v)` — `1.0`
    /// for key-like columns, large when one column concentrates on few
    /// values (the adversarial instances the stats digest must tell
    /// apart from uniform ones).
    pub fn max_skew(&self) -> f64 {
        if self.rows == 0 || self.distinct.is_empty() {
            return 1.0;
        }
        let min = self.distinct.iter().copied().min().unwrap_or(1).max(1);
        self.rows as f64 / min as f64
    }
}

impl<S: Semiring> Relation<S> {
    /// Gathers [`RelationStats`] in one pass over the sorted arena.
    /// Column 0's distinct count falls out of the prefix counter for
    /// free (the arena is sorted on it); only columns `1..` pay a
    /// value-set each.
    pub fn stats(&self) -> RelationStats {
        let arity = self.schema().len();
        let mut prefix_distinct = vec![0usize; arity];
        let mut seen: Vec<HashSet<u32>> = vec![HashSet::new(); arity.saturating_sub(1)];
        let mut prev: Option<&[u32]> = None;
        for t in self.tuples() {
            // First column where this row departs from its predecessor:
            // every prefix from there on starts a new group.
            let diverge = match prev {
                None => 0,
                Some(p) => t
                    .iter()
                    .zip(p)
                    .position(|(a, b)| a != b)
                    .unwrap_or(arity.saturating_sub(1)),
            };
            for counter in prefix_distinct.iter_mut().skip(diverge) {
                *counter += 1;
            }
            for (set, &x) in seen.iter_mut().zip(t.iter().skip(1)) {
                set.insert(x);
            }
            prev = Some(t);
        }
        let mut distinct = Vec::with_capacity(arity);
        if arity > 0 {
            distinct.push(prefix_distinct[0]);
            distinct.extend(seen.iter().map(HashSet::len));
        }
        RelationStats {
            schema: self.schema().to_vec(),
            rows: self.len(),
            distinct,
            prefix_distinct,
        }
    }
}

/// Incrementally-maintained [`RelationStats`]: one full build pass,
/// then `O(arity)` updates per changed tuple, so a mutating workload
/// never re-scans a factor to keep the planner's digest current.
///
/// Exactness (not an estimate) comes from multiplicity counting: each
/// per-column and per-prefix map stores how many listed rows carry that
/// value/prefix, so deletions know when a distinct count actually drops.
#[derive(Clone, Debug)]
pub struct MaintainedStats {
    schema: Vec<Var>,
    rows: usize,
    /// Multiplicity of each value, per column.
    col_counts: Vec<HashMap<u32, usize>>,
    /// Multiplicity of each row prefix of length `l`, for the "middle"
    /// lengths `l ∈ 2..arity` (length 1 is `col_counts[0]`, length
    /// `arity` is `rows` — rows are duplicate-free).
    prefix_counts: Vec<HashMap<Vec<u32>, usize>>,
}

impl MaintainedStats {
    /// Builds the counters in one pass over the relation — the only
    /// full scan a maintained factor ever pays.
    pub fn of<S: Semiring>(rel: &Relation<S>) -> Self {
        let schema = rel.schema().to_vec();
        let arity = schema.len();
        let mut s = MaintainedStats {
            schema,
            rows: 0,
            col_counts: vec![HashMap::new(); arity],
            prefix_counts: vec![HashMap::new(); arity.saturating_sub(2)],
        };
        for t in rel.tuples() {
            s.add_row(t);
        }
        s
    }

    /// The schema the counters describe.
    pub fn schema(&self) -> &[Var] {
        &self.schema
    }

    /// Current listing size.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Folds an applied delta into the counters: `O(arity)` hash
    /// updates per changed tuple, no scan of the relation.
    pub fn apply<S: Semiring>(&mut self, applied: &AppliedDelta<S>) {
        debug_assert_eq!(self.schema.as_slice(), applied.schema());
        for (t, old, new) in applied.changes() {
            match (old.is_zero(), new.is_zero()) {
                (true, false) => self.add_row(t),
                (false, true) => self.remove_row(t),
                // Annotation-only change: the listing is unchanged.
                _ => {}
            }
        }
    }

    /// The counters as a point-in-time [`RelationStats`], identical to
    /// what [`Relation::stats`] would compute from scratch.
    pub fn snapshot(&self) -> RelationStats {
        let arity = self.schema.len();
        let mut prefix_distinct = Vec::with_capacity(arity);
        for l in 1..=arity {
            prefix_distinct.push(if l == arity {
                self.rows
            } else if l == 1 {
                self.col_counts[0].len()
            } else {
                self.prefix_counts[l - 2].len()
            });
        }
        RelationStats {
            schema: self.schema.clone(),
            rows: self.rows,
            distinct: self.col_counts.iter().map(HashMap::len).collect(),
            prefix_distinct,
        }
    }

    fn add_row(&mut self, t: &[u32]) {
        self.rows += 1;
        for (counts, &x) in self.col_counts.iter_mut().zip(t) {
            *counts.entry(x).or_insert(0) += 1;
        }
        let arity = self.schema.len();
        for l in 2..arity {
            *self.prefix_counts[l - 2]
                .entry(t[..l].to_vec())
                .or_insert(0) += 1;
        }
    }

    fn remove_row(&mut self, t: &[u32]) {
        self.rows -= 1;
        for (counts, &x) in self.col_counts.iter_mut().zip(t) {
            if let Some(c) = counts.get_mut(&x) {
                *c -= 1;
                if *c == 0 {
                    counts.remove(&x);
                }
            }
        }
        let arity = self.schema.len();
        for l in 2..arity {
            if let Some(c) = self.prefix_counts[l - 2].get_mut(&t[..l]) {
                *c -= 1;
                if *c == 0 {
                    self.prefix_counts[l - 2].remove(&t[..l]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faqs_semiring::Count;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn rel(rows: &[[u32; 2]]) -> Relation<Count> {
        Relation::from_pairs(
            vec![v(0), v(1)],
            rows.iter().map(|t| (t.to_vec(), Count(1))),
        )
    }

    #[test]
    fn counts_rows_distinct_and_prefixes() {
        let r = rel(&[[1, 5], [1, 7], [2, 5], [2, 5], [3, 9]]);
        let s = r.stats();
        assert_eq!(s.rows, 4, "duplicate row collapses");
        assert_eq!(s.distinct, vec![3, 3], "values {{1,2,3}} and {{5,7,9}}");
        assert_eq!(s.prefix_distinct, vec![3, 4]);
        assert_eq!(s.distinct_of(v(1)), Some(3));
        assert_eq!(s.distinct_of(v(9)), None);
    }

    #[test]
    fn skew_and_selectivity() {
        // One hot key: 4 rows share x0 = 1.
        let r = rel(&[[1, 0], [1, 1], [1, 2], [1, 3]]);
        let s = r.stats();
        assert_eq!(s.max_skew(), 4.0);
        assert_eq!(s.prefix_selectivity(1), 4.0, "one group of four rows");
        assert_eq!(s.prefix_selectivity(2), 1.0, "full rows are unique");

        let uniform = rel(&[[0, 0], [1, 1], [2, 2], [3, 3]]);
        assert_eq!(uniform.stats().max_skew(), 1.0);
    }

    #[test]
    fn maintained_stats_track_full_rescan_under_churn() {
        use crate::delta::RelationDelta;
        // A ternary relation exercises the middle prefix maps too.
        let schema = vec![v(0), v(1), v(2)];
        let mut r: Relation<Count> = Relation::from_pairs(
            schema.clone(),
            (0..40u32).map(|i| (vec![i % 5, i % 7, i], Count(1 + u64::from(i) % 3))),
        );
        let mut m = MaintainedStats::of(&r);
        assert_eq!(m.snapshot(), r.stats(), "initial build matches");

        // Deterministic churn: inserts (fresh and accumulating),
        // deletes (including a last-occurrence delete that drops a
        // distinct value), overwrites, delete-to-empty of a value class.
        let mut step = |ops: &mut dyn FnMut(&mut RelationDelta<Count>)| {
            let mut d = RelationDelta::new(schema.clone());
            ops(&mut d);
            let applied = r.apply_delta(&d);
            m.apply(&applied);
            assert_eq!(m.snapshot(), r.stats());
        };
        step(&mut |d| d.insert(vec![9, 9, 100], Count(4)));
        step(&mut |d| {
            d.delete(vec![0, 0, 0]);
            d.insert(vec![0, 0, 0], Count(2)); // re-insert of a deleted tuple
        });
        step(&mut |d| {
            for i in 0..40u32 {
                d.delete(vec![i % 5, i % 7, i]); // drain the original rows
            }
        });
        step(&mut |d| d.delete(vec![0, 0, 0]));
        step(&mut |d| d.delete(vec![9, 9, 100])); // now empty
        assert_eq!(r.len(), 0);
        assert_eq!(m.rows(), 0);
    }

    #[test]
    fn degenerate_relations() {
        let empty: Relation<Count> = Relation::new([v(0)]);
        let s = empty.stats();
        assert_eq!(s.rows, 0);
        assert_eq!(s.distinct, vec![0]);
        assert_eq!(s.max_skew(), 1.0);

        let unit: Relation<Count> = Relation::unit();
        let s = unit.stats();
        assert_eq!(s.rows, 1);
        assert!(s.distinct.is_empty());
        assert_eq!(s.prefix_selectivity(0), 1.0);
        // Regression: asking for a longer prefix than the arity must
        // clamp, not underflow (nullary relations have no prefixes).
        assert_eq!(s.prefix_selectivity(1), 1.0);
        let single = rel(&[[1, 2], [1, 3]]);
        assert_eq!(
            single.stats().prefix_selectivity(7),
            1.0,
            "clamped to arity"
        );
    }
}
