//! The annotated relation type over a flat columnar arena.

use crate::kernel::{self, JoinIndex};
use faqs_hypergraph::Var;
use faqs_semiring::{Aggregate, LatticeOps, Semiring};
use std::fmt;

/// A boxed tuple of domain values. Survives only as a conversion helper
/// for call sites that need an owned tuple; [`Relation`] itself stores
/// tuples inline in a flat arena and hands out `&[u32]` views.
pub type Tuple = Box<[u32]>;

/// A semiring-annotated relation in listing representation, stored
/// columnar-style: one flat row-major `Vec<u32>` arena (arity-strided,
/// no per-tuple boxes) plus a parallel annotation column.
///
/// Invariants maintained by every operation:
///
/// * the schema lists distinct variables; row `i` occupies
///   `data[i·r .. (i+1)·r]` for arity `r = schema.len()`;
/// * no row is annotated with the semiring zero (the listing
///   representation stores non-zero entries only);
/// * rows are lexicographically sorted and duplicate-free (duplicate
///   inserts `⊕`-accumulate), so equal relations compare equal
///   structurally and every operator can merge instead of hash.
#[derive(Clone, PartialEq)]
pub struct Relation<S: Semiring> {
    schema: Vec<Var>,
    /// Row-major tuple arena, `len() * schema.len()` entries.
    data: Vec<u32>,
    /// Annotation column, parallel to the rows.
    values: Vec<S>,
}

/// How many leading entries [`Relation`]'s `Debug` impl prints before
/// eliding the tail — the `[N]×{1}` paddings of the lower-bound
/// constructions would otherwise flood test output.
const DEBUG_MAX_ENTRIES: usize = 16;

impl<S: Semiring> fmt::Debug for Relation<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation{:?} {{", self.schema)?;
        for (t, v) in self.iter().take(DEBUG_MAX_ENTRIES) {
            write!(f, " {t:?}→{v:?}")?;
        }
        if self.len() > DEBUG_MAX_ENTRIES {
            write!(f, " … ({} more)", self.len() - DEBUG_MAX_ENTRIES)?;
        }
        write!(f, " }}")
    }
}

impl<S: Semiring> Relation<S> {
    /// An empty relation over the given schema (distinct variables).
    pub fn new<I: IntoIterator<Item = Var>>(schema: I) -> Self {
        let schema: Vec<Var> = schema.into_iter().collect();
        let mut sorted = schema.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            schema.len(),
            "schema variables must be distinct"
        );
        Relation {
            schema,
            data: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The nullary relation whose single (empty-tuple) annotation is `1`
    /// — the `⊗`-identity the engine seeds empty nodes with.
    pub fn unit() -> Self {
        Relation {
            schema: Vec::new(),
            data: Vec::new(),
            values: vec![S::one()],
        }
    }

    /// Builds a relation from `(tuple, value)` pairs, `⊕`-accumulating
    /// duplicates and dropping zeros. One gather and one sort-merge —
    /// no intermediate hash map, no second normalisation pass.
    pub fn from_pairs<I>(schema: Vec<Var>, pairs: I) -> Self
    where
        I: IntoIterator<Item = (Vec<u32>, S)>,
    {
        let mut r = Relation::new(schema);
        let arity = r.schema.len();
        let mut data: Vec<u32> = Vec::new();
        let mut values: Vec<S> = Vec::new();
        for (t, v) in pairs {
            assert_eq!(t.len(), arity, "tuple arity mismatch");
            data.extend_from_slice(&t);
            values.push(v);
        }
        let (data, values) = kernel::sort_merge_rows(arity, data, values, |a, b| a.add_assign(b));
        r.data = data;
        r.values = values;
        r
    }

    /// Builds a relation directly from a row-major arena and its
    /// parallel annotation column (`values.len() * schema.len()` data
    /// entries). Rows are canonicalised with one sort-merge (skipped
    /// when the arena is already strictly sorted); zero annotations are
    /// dropped. This is the bulk-load path for enumerators that produce
    /// rows in order — no per-tuple allocation at all.
    pub fn from_columns(schema: Vec<Var>, data: Vec<u32>, values: Vec<S>) -> Self {
        let mut r = Relation::new(schema);
        let arity = r.schema.len();
        assert_eq!(data.len(), values.len() * arity, "arena shape mismatch");
        let (data, values) = kernel::sort_merge_rows(arity, data, values, |a, b| a.add_assign(b));
        r.data = data;
        r.values = values;
        r
    }

    /// The "all ones" relation over a uniform domain `[0, domain)^r` —
    /// the `[N] × {1}`-style paddings of the lower-bound constructions.
    /// Panics if the result would exceed `2^24` tuples (guard against
    /// accidental blowup). Rows are generated in lexicographic order,
    /// so construction is a single allocation-free fill.
    pub fn full(schema: Vec<Var>, domain: u32) -> Self {
        let r = schema.len();
        let total = (domain as u64).pow(r as u32);
        assert!(total <= 1 << 24, "full relation too large: {total}");
        let mut rel = Relation::new(schema);
        rel.data.reserve(total as usize * r);
        rel.values.reserve(total as usize);
        for idx in 0..total {
            let mut rem = idx;
            let start = rel.data.len();
            rel.data.resize(start + r, 0);
            for slot in rel.data[start..].iter_mut().rev() {
                *slot = (rem % domain as u64) as u32;
                rem /= domain as u64;
            }
            rel.values.push(S::one());
        }
        rel
    }

    /// The schema, in tuple order.
    #[inline]
    pub fn schema(&self) -> &[Var] {
        &self.schema
    }

    /// Number of listed (non-zero) tuples — the paper's `|R_e| ≤ N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the relation lists no tuples (the function is identically
    /// zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `i`-th tuple as a view into the arena.
    #[inline]
    pub fn tuple_at(&self, i: usize) -> &[u32] {
        let r = self.schema.len();
        &self.data[i * r..i * r + r]
    }

    /// The `i`-th annotation.
    #[inline]
    pub fn value_at(&self, i: usize) -> &S {
        &self.values[i]
    }

    /// Iterates over tuple views in canonical order.
    pub fn tuples(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len()).map(move |i| self.tuple_at(i))
    }

    /// Iterates over `(tuple, value)` entries in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], &S)> + '_ {
        (0..self.len()).map(move |i| (self.tuple_at(i), &self.values[i]))
    }

    /// Inserts (⊕-accumulates) one entry.
    pub fn insert(&mut self, tuple: Vec<u32>, value: S) {
        let r = self.schema.len();
        assert_eq!(tuple.len(), r, "tuple arity mismatch");
        if value.is_zero() {
            return;
        }
        match self.row_search(&tuple) {
            Ok(i) => {
                self.values[i].add_assign(&value);
                if self.values[i].is_zero() {
                    self.values.remove(i);
                    self.data.drain(i * r..(i + 1) * r);
                }
            }
            Err(i) => {
                self.values.insert(i, value);
                self.data.splice(i * r..i * r, tuple);
            }
        }
    }

    /// Removes one tuple's entry, returning its previous annotation
    /// (`None` when the tuple was not listed). The single-tuple
    /// counterpart of [`Relation::insert`]; batched mutations should go
    /// through [`Relation::apply_delta`] instead.
    ///
    /// [`Relation::apply_delta`]: Relation::apply_delta
    pub fn delete(&mut self, tuple: &[u32]) -> Option<S> {
        let r = self.schema.len();
        assert_eq!(tuple.len(), r, "tuple arity mismatch");
        match self.row_search(tuple) {
            Ok(i) => {
                self.data.drain(i * r..(i + 1) * r);
                Some(self.values.remove(i))
            }
            Err(_) => None,
        }
    }

    /// The annotation of an exact tuple, if listed.
    pub fn get(&self, tuple: &[u32]) -> Option<&S> {
        self.row_search(tuple).ok().map(|i| &self.values[i])
    }

    /// Binary search for a row in the sorted arena.
    fn row_search(&self, tuple: &[u32]) -> Result<usize, usize> {
        kernel::binary_search_row(&self.data, self.schema.len(), self.len(), tuple)
    }

    /// Positions of `vars` inside this schema; panics when absent.
    pub(crate) fn positions(&self, vars: &[Var]) -> Vec<usize> {
        vars.iter()
            .map(|v| {
                self.schema
                    .iter()
                    .position(|w| w == v)
                    .unwrap_or_else(|| panic!("{v} not in schema {:?}", self.schema))
            })
            .collect()
    }

    /// Mutable access to the raw arena for kernel builders (same crate).
    pub(crate) fn parts_mut(&mut self) -> (&mut Vec<u32>, &mut Vec<S>) {
        (&mut self.data, &mut self.values)
    }

    /// Replaces the raw arena (kernel builders; rows must be canonical).
    pub(crate) fn set_parts(&mut self, data: Vec<u32>, values: Vec<S>) {
        debug_assert_eq!(data.len(), values.len() * self.schema.len());
        self.data = data;
        self.values = values;
    }

    /// The raw row-major tuple arena (generic-join range scans).
    pub(crate) fn raw_data(&self) -> &[u32] {
        &self.data
    }

    /// The raw annotation column, parallel to the rows.
    pub(crate) fn raw_values(&self) -> &[S] {
        &self.values
    }

    /// The variables shared with `other`, in this schema's order.
    pub fn shared_vars(&self, other: &Relation<S>) -> Vec<Var> {
        self.schema
            .iter()
            .copied()
            .filter(|v| other.schema.contains(v))
            .collect()
    }

    /// Builds a reusable [`JoinIndex`] of this relation keyed on `vars`
    /// (a subset of the schema). The engine and the Yannakakis reducer
    /// build one per factor and probe it across calls instead of
    /// re-hashing the factor per operation.
    pub fn build_index(&self, vars: &[Var]) -> JoinIndex {
        JoinIndex::build(self, vars)
    }

    /// The rows whose value at `var` appears in `values` (which must be
    /// sorted ascending; duplicates are tolerated) — batched point
    /// selection `σ_{var ∈ values}`. One index build plus one galloping
    /// sweep ([`JoinIndex::lookup_many`]) serves every selection value
    /// at once, which is how cross-query batching restricts a shared
    /// factor to a whole batch of bindings in a single pass.
    pub fn restrict_in(&self, var: Var, values: &[u32]) -> Relation<S> {
        let idx = self.build_index(&[var]);
        let mut keep: Vec<u32> = Vec::new();
        idx.lookup_many(values, |_, rows| keep.extend_from_slice(rows));
        // Duplicate selection values hit their group once each; rows
        // re-sort to canonical (ascending row id) order either way.
        keep.sort_unstable();
        keep.dedup();
        let mut out = Relation::new(self.schema.clone());
        let (out_data, out_values) = out.parts_mut();
        for &i in &keep {
            out_data.extend_from_slice(self.tuple_at(i as usize));
            out_values.push(self.value_at(i as usize).clone());
        }
        out
    }

    /// Projection `π_vars` with `⊕`-aggregation of collapsed tuples: the
    /// FAQ-SS marginalisation of every variable outside `vars`.
    pub fn project(&self, vars: &[Var]) -> Relation<S> {
        let pos = self.positions(vars);
        kernel::project_with(self, vars, &pos, |a, b| a.add_assign(b))
    }

    /// Aggregates out a single variable with the given operator — the
    /// push-down step of Corollary G.2. `Sum`/`Product` work on any
    /// semiring; `Max`/`Min` require [`LatticeOps`] (see
    /// [`Relation::aggregate_out_lattice`]).
    pub fn aggregate_out(&self, var: Var, op: Aggregate) -> Relation<S> {
        self.aggregate_out_with(var, |a, b| {
            op.apply_semiring(a, b)
                .expect("Max/Min need aggregate_out_lattice")
        })
    }

    /// [`Relation::aggregate_out`] for lattice-capable semirings,
    /// accepting all four aggregate operators.
    pub fn aggregate_out_lattice(&self, var: Var, op: Aggregate) -> Relation<S>
    where
        S: LatticeOps,
    {
        self.aggregate_out_with(var, |a, b| op.apply(a, b))
    }

    fn aggregate_out_with(&self, var: Var, combine: impl Fn(&S, &S) -> S) -> Relation<S> {
        let drop = self.positions(&[var])[0];
        let rest: Vec<Var> = self.schema.iter().copied().filter(|v| *v != var).collect();
        let pos: Vec<usize> = (0..self.schema.len()).filter(|&i| i != drop).collect();
        kernel::project_with(self, &rest, &pos, |a, b| *a = combine(a, b))
    }

    /// Natural join `⋈` (Definition 3.4) with `⊗`-multiplied annotations:
    /// the output schema is this schema followed by `other`'s fresh
    /// variables. Builds a [`JoinIndex`] on `other` keyed on the shared
    /// variables and probes it once per row; see
    /// [`Relation::join_indexed`] to reuse a prebuilt index.
    ///
    /// ```
    /// use faqs_relation::Relation;
    /// use faqs_hypergraph::Var;
    /// use faqs_semiring::Count;
    /// let r = Relation::from_pairs(vec![Var(0), Var(1)], [(vec![1, 2], Count(2))]);
    /// let s = Relation::from_pairs(vec![Var(1), Var(2)], [(vec![2, 7], Count(3))]);
    /// let j = r.join(&s);
    /// assert_eq!(j.get(&[1, 2, 7]), Some(&Count(6)));
    /// ```
    pub fn join(&self, other: &Relation<S>) -> Relation<S> {
        let shared = self.shared_vars(other);
        let idx = JoinIndex::build(other, &shared);
        kernel::join_via(self, other, &idx)
    }

    /// [`Relation::join`] against a prebuilt index of `other`, which
    /// must be keyed on exactly the variables shared with `self`.
    pub fn join_indexed(&self, other: &Relation<S>, idx: &JoinIndex) -> Relation<S> {
        kernel::join_via(self, other, idx)
    }

    /// [`Relation::join_indexed`] with the probe side partitioned by
    /// contiguous (hence key-contiguous — the arena is sorted) row
    /// ranges across `threads` scoped workers. Produces exactly the
    /// sequential output: each range's rows land in range order, so the
    /// per-worker arenas concatenate canonically. `threads <= 1` is the
    /// sequential path; the parallel FAQ executor routes large single
    /// joins here.
    pub fn join_indexed_par(
        &self,
        other: &Relation<S>,
        idx: &JoinIndex,
        threads: usize,
    ) -> Relation<S> {
        kernel::join_via_partitioned(self, other, idx, threads)
    }

    /// Semijoin `⋉` (Definition 3.5): keeps this relation's entries whose
    /// projection onto the shared variables appears in `other`
    /// (annotations unchanged — the filtering semantics the BCQ protocols
    /// use, cf. Example 2.1's `((R ⋉ S) ⋉ T) ⋉ U`).
    pub fn semijoin(&self, other: &Relation<S>) -> Relation<S> {
        let shared = self.shared_vars(other);
        let idx = JoinIndex::build(other, &shared);
        kernel::semijoin_via(self, other, &idx)
    }

    /// [`Relation::semijoin`] against a prebuilt index of `other` (the
    /// filtering relation), which must be keyed on exactly the shared
    /// variables — asserted, since a partial key would silently
    /// under-filter.
    pub fn semijoin_indexed(&self, other: &Relation<S>, idx: &JoinIndex) -> Relation<S> {
        kernel::semijoin_via(self, other, idx)
    }

    /// Semijoin in the probed direction: `own_idx` indexes `self`, and
    /// rows survive when their key group is hit by some row of `other`.
    /// Lets one index of `self` serve several filters (the Yannakakis
    /// downward pass) instead of indexing each filter relation.
    pub fn semijoin_probed(&self, own_idx: &JoinIndex, other: &Relation<S>) -> Relation<S> {
        kernel::semijoin_probe(self, own_idx, other)
    }

    /// Pointwise `⊗`-product of two relations over the *same* schema
    /// (tuple intersection): the combine step of the distributed star
    /// protocol (Algorithm 1 step 5 / Algorithm 3 step 10). A galloping
    /// merge over the two sorted arenas.
    pub fn product_same_schema(&self, other: &Relation<S>) -> Relation<S> {
        assert_eq!(self.schema, other.schema, "schemas must match");
        kernel::merge_product(self, other)
    }

    /// Maps every annotation through `f`, dropping entries that map to
    /// zero. Order-preserving — only the annotation column is rebuilt.
    pub fn map_values(&self, mut f: impl FnMut(&S) -> S) -> Relation<S> {
        let mut out = Relation {
            schema: self.schema.clone(),
            data: self.data.clone(),
            values: self.values.iter().map(&mut f).collect(),
        };
        if out.values.iter().any(S::is_zero) {
            kernel::compact_zeros(self.schema.len(), &mut out.data, &mut out.values);
        }
        out
    }

    /// Replaces every annotation with `1` — the "identity map" trick of
    /// Algorithm 3 (step 8) that stops the star center's values being
    /// multiplied in more than once.
    pub fn identity_map(&self) -> Relation<S> {
        self.map_values(|_| S::one())
    }

    /// `⊕`-total of all annotations: with `F = ∅` this is the FAQ answer
    /// scalar (for BCQ, non-zero ⇔ `true`).
    pub fn total(&self) -> S {
        S::sum(self.values.iter().cloned())
    }

    /// Reorders the schema (and all tuples) to the given permutation of
    /// the current schema.
    pub fn reorder(&self, schema: &[Var]) -> Relation<S> {
        let pos = self.positions(schema);
        assert_eq!(schema.len(), self.schema.len(), "must be a permutation");
        let mut data: Vec<u32> = Vec::with_capacity(self.data.len());
        for t in self.tuples() {
            data.extend(pos.iter().map(|&p| t[p]));
        }
        let (data, values) =
            kernel::sort_merge_rows(schema.len(), data, self.values.clone(), |a, b| {
                a.add_assign(b)
            });
        let mut out = Relation::new(schema.to_vec());
        out.data = data;
        out.values = values;
        out
    }

    /// The number of bits needed to ship this relation in Model 2.1:
    /// every tuple costs `r · ⌈log₂ D⌉` bits plus the semiring
    /// annotation.
    pub fn bits(&self, domain: u32) -> u64 {
        let per_value = (32 - domain.saturating_sub(1).leading_zeros()).max(1) as u64;
        self.len() as u64 * (self.schema.len() as u64 * per_value + S::value_bits())
    }

    /// Approximate structural equality (same schema, same tuples,
    /// `approx_eq` values) — for float-carrying semirings in tests.
    pub fn approx_eq(&self, other: &Relation<S>) -> bool {
        self.schema == other.schema
            && self.data == other.data
            && self.len() == other.len()
            && self
                .values
                .iter()
                .zip(other.values.iter())
                .all(|(v, w)| v.approx_eq(w))
    }

    /// Splits the relation into `parts` chunks of near-equal size
    /// (round-robin over the canonical order) — used by the Steiner-tree
    /// pipelining and the hash-split experiments.
    pub fn split(&self, parts: usize) -> Vec<Relation<S>> {
        assert!(parts >= 1);
        let mut out: Vec<Relation<S>> = (0..parts)
            .map(|_| Relation::new(self.schema.clone()))
            .collect();
        for (i, (t, v)) in self.iter().enumerate() {
            let part = &mut out[i % parts];
            part.data.extend_from_slice(t);
            part.values.push(v.clone());
        }
        out
    }

    /// Partitions the listing by an owner function (e.g. a consistent
    /// hash of the join-key value): tuple `t` lands in part
    /// `owner_of(t) % parts`. Canonical order is preserved inside every
    /// part, so the parts reassemble with [`Relation::union_all`] on the
    /// presorted fast path.
    pub fn split_by(
        &self,
        parts: usize,
        mut owner_of: impl FnMut(&[u32]) -> usize,
    ) -> Vec<Relation<S>> {
        assert!(parts >= 1);
        let mut out: Vec<Relation<S>> = (0..parts)
            .map(|_| Relation::new(self.schema.clone()))
            .collect();
        for (t, v) in self.iter() {
            let part = &mut out[owner_of(t) % parts];
            part.data.extend_from_slice(t);
            part.values.push(v.clone());
        }
        out
    }

    /// Union of same-schema relations with `⊕`-accumulation of duplicate
    /// tuples (inverse of [`Relation::split`]): concatenate the arenas,
    /// then one sort-merge.
    pub fn union_all(parts: &[Relation<S>]) -> Relation<S> {
        assert!(!parts.is_empty());
        let schema = parts[0].schema.clone();
        let mut data: Vec<u32> = Vec::with_capacity(parts.iter().map(|p| p.data.len()).sum());
        let mut values: Vec<S> = Vec::with_capacity(parts.iter().map(Relation::len).sum());
        for p in parts {
            assert_eq!(p.schema, schema, "schemas must match");
            data.extend_from_slice(&p.data);
            values.extend(p.values.iter().cloned());
        }
        Relation::from_columns(schema, data, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faqs_semiring::{Boolean, Count, Prob};

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn count_rel(schema: &[u32], rows: &[(&[u32], u64)]) -> Relation<Count> {
        Relation::from_pairs(
            schema.iter().map(|i| v(*i)).collect(),
            rows.iter().map(|(t, c)| (t.to_vec(), Count(*c))),
        )
    }

    #[test]
    fn restrict_in_selects_and_stays_canonical() {
        let r = count_rel(
            &[0, 1],
            &[(&[1, 5], 1), (&[2, 3], 2), (&[2, 7], 3), (&[4, 0], 4)],
        );
        // Select on the leading column, with a duplicate and misses.
        let got = r.restrict_in(v(0), &[0, 2, 2, 4, 9]);
        assert_eq!(
            got,
            count_rel(&[0, 1], &[(&[2, 3], 2), (&[2, 7], 3), (&[4, 0], 4)])
        );
        // Select on a non-leading column: row order re-canonicalises.
        let got = r.restrict_in(v(1), &[0, 5]);
        assert_eq!(got, count_rel(&[0, 1], &[(&[1, 5], 1), (&[4, 0], 4)]));
        // Empty selection, empty relation.
        assert_eq!(r.restrict_in(v(0), &[]).len(), 0);
        let empty: Relation<Count> = Relation::new([v(0), v(1)]);
        assert_eq!(empty.restrict_in(v(0), &[1]).len(), 0);
    }

    #[test]
    fn insert_accumulates_and_drops_zero() {
        let mut r: Relation<Count> = Relation::new([v(0)]);
        r.insert(vec![1], Count(2));
        r.insert(vec![1], Count(3));
        assert_eq!(r.get(&[1]), Some(&Count(5)));
        r.insert(vec![2], Count(0));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn schema_rejects_duplicates() {
        let _: Relation<Count> = Relation::new([v(0), v(0)]);
    }

    #[test]
    fn from_pairs_accumulates_in_one_pass() {
        let r = count_rel(&[0, 1], &[(&[3, 3], 1), (&[1, 2], 2), (&[3, 3], 4)]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(&[3, 3]), Some(&Count(5)));
        // Canonical order: rows sorted lexicographically.
        assert_eq!(r.tuple_at(0), &[1, 2]);
        assert_eq!(r.tuple_at(1), &[3, 3]);
    }

    #[test]
    fn from_columns_bulk_loads() {
        let r: Relation<Count> = Relation::from_columns(
            vec![v(0), v(1)],
            vec![2, 2, 1, 1, 2, 2],
            vec![Count(1), Count(2), Count(3)],
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(&[2, 2]), Some(&Count(4)));
    }

    #[test]
    fn unit_is_the_join_identity() {
        let u: Relation<Count> = Relation::unit();
        assert_eq!(u.len(), 1);
        assert_eq!(u.total(), Count(1));
        let r = count_rel(&[0], &[(&[1], 5)]);
        assert_eq!(u.join(&r), r);
    }

    #[test]
    fn debug_truncates_long_relations() {
        let r: Relation<Boolean> = Relation::full(vec![v(0), v(1)], 8);
        let s = format!("{r:?}");
        assert!(s.contains("… (48 more)"), "got {s}");
        let small = count_rel(&[0], &[(&[1], 1)]);
        assert!(!format!("{small:?}").contains("more"));
    }

    #[test]
    fn projection_aggregates() {
        let r = count_rel(&[0, 1], &[(&[1, 1], 2), (&[1, 2], 3), (&[2, 1], 5)]);
        let p = r.project(&[v(0)]);
        assert_eq!(p.get(&[1]), Some(&Count(5)));
        assert_eq!(p.get(&[2]), Some(&Count(5)));
    }

    #[test]
    fn projection_on_non_prefix_positions() {
        let r = count_rel(&[0, 1], &[(&[1, 7], 2), (&[2, 7], 3), (&[3, 5], 5)]);
        let p = r.project(&[v(1)]);
        assert_eq!(p.get(&[7]), Some(&Count(5)));
        assert_eq!(p.get(&[5]), Some(&Count(5)));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn aggregate_out_matches_project_for_sum() {
        let r = count_rel(&[0, 1], &[(&[1, 1], 2), (&[1, 2], 3), (&[2, 1], 5)]);
        assert_eq!(r.aggregate_out(v(1), Aggregate::Sum), r.project(&[v(0)]));
    }

    #[test]
    fn aggregate_out_max() {
        let r = count_rel(&[0, 1], &[(&[1, 1], 2), (&[1, 2], 3)]);
        let m = r.aggregate_out_lattice(v(1), Aggregate::Max);
        assert_eq!(m.get(&[1]), Some(&Count(3)));
    }

    #[test]
    fn join_multiplies_annotations() {
        let r = count_rel(&[0, 1], &[(&[1, 2], 2)]);
        let s = count_rel(&[1, 2], &[(&[2, 7], 3), (&[9, 9], 1)]);
        let j = r.join(&s);
        assert_eq!(j.schema(), &[v(0), v(1), v(2)]);
        assert_eq!(j.len(), 1);
        assert_eq!(j.get(&[1, 2, 7]), Some(&Count(6)));
    }

    #[test]
    fn join_is_commutative_up_to_reorder() {
        let r = count_rel(&[0, 1], &[(&[1, 2], 2), (&[3, 4], 7)]);
        let s = count_rel(&[1, 2], &[(&[2, 7], 3), (&[4, 1], 5)]);
        let a = r.join(&s);
        let b = s.join(&r).reorder(&[v(0), v(1), v(2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn join_output_stays_sorted_without_normalise() {
        let r = count_rel(&[0], &[(&[1], 1), (&[2], 1)]);
        let s = count_rel(&[1, 0], &[(&[9, 1], 1), (&[5, 1], 1), (&[7, 2], 1)]);
        let j = r.join(&s);
        assert_eq!(j.schema(), &[v(0), v(1)]);
        let tuples: Vec<&[u32]> = j.tuples().collect();
        assert_eq!(tuples, vec![&[1, 5][..], &[1, 9][..], &[2, 7][..]]);
    }

    #[test]
    fn join_with_prebuilt_index_reuses_it() {
        let r = count_rel(&[0, 1], &[(&[1, 2], 2), (&[3, 4], 7)]);
        let s = count_rel(&[1, 2], &[(&[2, 7], 3), (&[4, 1], 5)]);
        let idx = s.build_index(&r.shared_vars(&s));
        assert_eq!(r.join_indexed(&s, &idx), r.join(&s));
    }

    #[test]
    fn partitioned_join_matches_sequential() {
        // A skewed many-to-many join: partitioning by row ranges must
        // reproduce the sequential output exactly (same rows, same
        // order, same annotations), for thread counts below, equal to,
        // and above the row count.
        let r = count_rel(
            &[0, 1],
            &(0..97u32)
                .map(|i| ([i % 13, i], 1 + (i as u64 % 3)))
                .collect::<Vec<_>>()
                .iter()
                .map(|(t, c)| (&t[..], *c))
                .collect::<Vec<_>>(),
        );
        let s = count_rel(
            &[0, 2],
            &(0..41u32)
                .map(|i| ([i % 13, i + 100], 2 + (i as u64 % 2)))
                .collect::<Vec<_>>()
                .iter()
                .map(|(t, c)| (&t[..], *c))
                .collect::<Vec<_>>(),
        );
        let idx = s.build_index(&r.shared_vars(&s));
        let seq = r.join_indexed(&s, &idx);
        for threads in [1usize, 2, 3, 4, 200] {
            assert_eq!(
                r.join_indexed_par(&s, &idx, threads),
                seq,
                "threads={threads}"
            );
        }
        // Degenerate inputs survive partitioning too.
        let empty = count_rel(&[0, 1], &[]);
        let idx2 = s.build_index(&empty.shared_vars(&s));
        assert_eq!(
            empty.join_indexed_par(&s, &idx2, 4),
            empty.join_indexed(&s, &idx2)
        );
    }

    #[test]
    fn cartesian_join_when_disjoint() {
        let r = count_rel(&[0], &[(&[1], 1), (&[2], 1)]);
        let s = count_rel(&[1], &[(&[5], 1), (&[6], 1)]);
        assert_eq!(r.join(&s).len(), 4);
    }

    #[test]
    fn semijoin_filters_without_changing_values() {
        let r = count_rel(&[0, 1], &[(&[1, 2], 2), (&[3, 4], 7)]);
        let s = count_rel(&[1, 2], &[(&[2, 9], 1)]);
        let sj = r.semijoin(&s);
        assert_eq!(sj.len(), 1);
        assert_eq!(sj.get(&[1, 2]), Some(&Count(2)));
    }

    #[test]
    fn semijoin_probed_matches_semijoin() {
        let r = count_rel(&[0, 1], &[(&[1, 2], 2), (&[3, 4], 7), (&[5, 2], 1)]);
        let s = count_rel(&[1, 2], &[(&[2, 9], 1), (&[8, 8], 1)]);
        let shared = r.shared_vars(&s);
        let own = r.build_index(&shared);
        assert_eq!(r.semijoin_probed(&own, &s), r.semijoin(&s));
    }

    #[test]
    fn semijoin_example_2_1_chain() {
        // Set intersection via chained semijoins on single-attribute
        // relations, as in Example 2.1.
        let mk = |xs: &[u32]| {
            Relation::<Boolean>::from_pairs(
                vec![v(0)],
                xs.iter().map(|x| (vec![*x], Boolean::TRUE)),
            )
        };
        let r = mk(&[1, 2, 3, 4]);
        let s = mk(&[2, 3, 9]);
        let t = mk(&[3, 2]);
        let u = mk(&[3]);
        let result = r.semijoin(&s).semijoin(&t).semijoin(&u);
        assert_eq!(result.len(), 1);
        assert!(result.get(&[3]).is_some());
    }

    #[test]
    fn product_same_schema_intersects() {
        let r = count_rel(&[0, 1], &[(&[1, 1], 2), (&[2, 2], 3)]);
        let s = count_rel(&[0, 1], &[(&[1, 1], 10), (&[3, 3], 1)]);
        let p = r.product_same_schema(&s);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(&[1, 1]), Some(&Count(20)));
    }

    #[test]
    fn identity_map_resets_values() {
        let r = count_rel(&[0], &[(&[1], 5), (&[2], 9)]);
        let id = r.identity_map();
        assert_eq!(id.get(&[1]), Some(&Count(1)));
        assert_eq!(id.get(&[2]), Some(&Count(1)));
    }

    #[test]
    fn map_values_drops_new_zeros() {
        let r = count_rel(&[0], &[(&[1], 5), (&[2], 9)]);
        let halved = r.map_values(|c| Count(c.0 / 9));
        assert_eq!(halved.len(), 1);
        assert_eq!(halved.get(&[2]), Some(&Count(1)));
    }

    #[test]
    fn total_sums_annotations() {
        let r = count_rel(&[0], &[(&[1], 5), (&[2], 9)]);
        assert_eq!(r.total(), Count(14));
    }

    #[test]
    fn full_relation_enumerates_domain() {
        let r: Relation<Boolean> = Relation::full(vec![v(0), v(1)], 3);
        assert_eq!(r.len(), 9);
        // Already canonical: first and last rows bracket the domain.
        assert_eq!(r.tuple_at(0), &[0, 0]);
        assert_eq!(r.tuple_at(8), &[2, 2]);
    }

    #[test]
    fn split_and_union_roundtrip() {
        let r = count_rel(&[0], &[(&[1], 1), (&[2], 2), (&[3], 3), (&[4], 4)]);
        let parts = r.split(3);
        assert_eq!(parts.iter().map(Relation::len).sum::<usize>(), 4);
        assert_eq!(Relation::union_all(&parts), r);
    }

    #[test]
    fn split_by_owner_partitions_and_roundtrips() {
        let r = count_rel(&[0], &[(&[1], 1), (&[2], 2), (&[3], 3), (&[4], 4)]);
        let parts = r.split_by(2, |t| t[0] as usize % 2);
        assert_eq!(parts[0].tuples().count(), 2, "even keys");
        assert!(parts[0].tuples().all(|t| t[0] % 2 == 0));
        assert!(parts[1].tuples().all(|t| t[0] % 2 == 1));
        assert_eq!(Relation::union_all(&parts), r);
    }

    #[test]
    fn bits_accounts_for_arity_and_domain() {
        let r = count_rel(&[0, 1], &[(&[1, 1], 1)]);
        // 2 vars × 4 bits (domain 16) + 64 value bits.
        assert_eq!(r.bits(16), 2 * 4 + 64);
        let b: Relation<Boolean> = Relation::from_pairs(vec![v(0)], [(vec![1], Boolean::TRUE)]);
        assert_eq!(b.bits(16), 4, "boolean annotations are free");
    }

    #[test]
    fn prob_join_and_project_compose() {
        let r: Relation<Prob> = Relation::from_pairs(
            vec![v(0), v(1)],
            [(vec![0, 0], Prob(0.5)), (vec![0, 1], Prob(0.5))],
        );
        let s: Relation<Prob> = Relation::from_pairs(
            vec![v(1), v(2)],
            [(vec![0, 0], Prob(0.25)), (vec![1, 0], Prob(0.75))],
        );
        let joint = r.join(&s);
        let marginal = joint.project(&[v(2)]);
        assert!(marginal.get(&[0]).unwrap().approx_eq(&Prob(0.5)));
    }

    #[test]
    fn reorder_permutes() {
        let r = count_rel(&[0, 1], &[(&[1, 2], 3)]);
        let p = r.reorder(&[v(1), v(0)]);
        assert_eq!(p.get(&[2, 1]), Some(&Count(3)));
    }

    #[test]
    fn nullary_relation_roundtrips() {
        let mut r: Relation<Count> = Relation::new([]);
        assert!(r.is_empty());
        r.insert(vec![], Count(2));
        r.insert(vec![], Count(3));
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(&[]), Some(&Count(5)));
        assert_eq!(r.total(), Count(5));
    }
}
