//! The annotated relation type and its relational-algebra kernel.

use faqs_hypergraph::Var;
use faqs_semiring::{Aggregate, LatticeOps, Semiring};
use std::collections::HashMap;
use std::fmt;

/// A tuple of domain values, one per schema variable, in schema order.
pub type Tuple = Box<[u32]>;

/// A semiring-annotated relation in listing representation.
///
/// Invariants maintained by every operation:
///
/// * the schema lists distinct variables; tuples have `schema.len()`
///   entries in schema order;
/// * no tuple is annotated with the semiring zero (the listing
///   representation stores non-zero entries only);
/// * each tuple appears at most once (duplicate inserts `⊕`-accumulate);
/// * entries are kept sorted by tuple, so equal relations compare equal
///   structurally.
#[derive(Clone, PartialEq)]
pub struct Relation<S: Semiring> {
    schema: Vec<Var>,
    entries: Vec<(Tuple, S)>,
}

impl<S: Semiring> fmt::Debug for Relation<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation{:?} {{", self.schema)?;
        for (t, v) in &self.entries {
            write!(f, " {t:?}→{v:?}")?;
        }
        write!(f, " }}")
    }
}

impl<S: Semiring> Relation<S> {
    /// An empty relation over the given schema (distinct variables).
    pub fn new<I: IntoIterator<Item = Var>>(schema: I) -> Self {
        let schema: Vec<Var> = schema.into_iter().collect();
        let mut sorted = schema.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            schema.len(),
            "schema variables must be distinct"
        );
        Relation {
            schema,
            entries: Vec::new(),
        }
    }

    /// Builds a relation from `(tuple, value)` pairs, `⊕`-accumulating
    /// duplicates and dropping zeros.
    pub fn from_pairs<I>(schema: Vec<Var>, pairs: I) -> Self
    where
        I: IntoIterator<Item = (Vec<u32>, S)>,
    {
        let mut r = Relation::new(schema);
        let mut map: HashMap<Tuple, S> = HashMap::new();
        for (t, v) in pairs {
            assert_eq!(t.len(), r.schema.len(), "tuple arity mismatch");
            let t: Tuple = t.into_boxed_slice();
            match map.get_mut(&t) {
                Some(acc) => acc.add_assign(&v),
                None => {
                    map.insert(t, v);
                }
            }
        }
        r.entries = map.into_iter().filter(|(_, v)| !v.is_zero()).collect();
        r.normalize();
        r
    }

    /// The "all ones" relation over a uniform domain `[0, domain)^r` —
    /// the `[N] × {1}`-style paddings of the lower-bound constructions.
    /// Panics if the result would exceed `2^24` tuples (guard against
    /// accidental blowup).
    pub fn full(schema: Vec<Var>, domain: u32) -> Self {
        let r = schema.len();
        let total = (domain as u64).pow(r as u32);
        assert!(total <= 1 << 24, "full relation too large: {total}");
        let mut rel = Relation::new(schema);
        let mut tuple = vec![0u32; r];
        for idx in 0..total {
            let mut rem = idx;
            for slot in tuple.iter_mut().rev() {
                *slot = (rem % domain as u64) as u32;
                rem /= domain as u64;
            }
            rel.entries
                .push((tuple.clone().into_boxed_slice(), S::one()));
        }
        rel.normalize();
        rel
    }

    /// The schema, in tuple order.
    #[inline]
    pub fn schema(&self) -> &[Var] {
        &self.schema
    }

    /// Number of listed (non-zero) tuples — the paper's `|R_e| ≤ N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the relation lists no tuples (the function is identically
    /// zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(tuple, value)` entries in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], &S)> + '_ {
        self.entries.iter().map(|(t, v)| (t.as_ref(), v))
    }

    /// Inserts (⊕-accumulates) one entry.
    pub fn insert(&mut self, tuple: Vec<u32>, value: S) {
        assert_eq!(tuple.len(), self.schema.len(), "tuple arity mismatch");
        if value.is_zero() {
            return;
        }
        let t: Tuple = tuple.into_boxed_slice();
        match self.entries.binary_search_by(|(u, _)| u.cmp(&t)) {
            Ok(i) => {
                self.entries[i].1.add_assign(&value);
                if self.entries[i].1.is_zero() {
                    self.entries.remove(i);
                }
            }
            Err(i) => self.entries.insert(i, (t, value)),
        }
    }

    /// The annotation of an exact tuple, if listed.
    pub fn get(&self, tuple: &[u32]) -> Option<&S> {
        self.entries
            .binary_search_by(|(u, _)| u.as_ref().cmp(tuple))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Restores the canonical sorted-by-tuple order (internal).
    fn normalize(&mut self) {
        self.entries.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
    }

    /// Positions of `vars` inside this schema; panics when absent.
    fn positions(&self, vars: &[Var]) -> Vec<usize> {
        vars.iter()
            .map(|v| {
                self.schema
                    .iter()
                    .position(|w| w == v)
                    .unwrap_or_else(|| panic!("{v} not in schema {:?}", self.schema))
            })
            .collect()
    }

    /// The variables shared with `other`, in this schema's order.
    pub fn shared_vars(&self, other: &Relation<S>) -> Vec<Var> {
        self.schema
            .iter()
            .copied()
            .filter(|v| other.schema.contains(v))
            .collect()
    }

    /// Projection `π_vars` with `⊕`-aggregation of collapsed tuples: the
    /// FAQ-SS marginalisation of every variable outside `vars`.
    pub fn project(&self, vars: &[Var]) -> Relation<S> {
        let pos = self.positions(vars);
        let mut map: HashMap<Tuple, S> = HashMap::with_capacity(self.entries.len());
        for (t, v) in &self.entries {
            let key: Tuple = pos.iter().map(|&i| t[i]).collect();
            match map.get_mut(&key) {
                Some(acc) => acc.add_assign(v),
                None => {
                    map.insert(key, v.clone());
                }
            }
        }
        let mut out = Relation::new(vars.to_vec());
        out.entries = map.into_iter().filter(|(_, v)| !v.is_zero()).collect();
        out.normalize();
        out
    }

    /// Aggregates out a single variable with the given operator — the
    /// push-down step of Corollary G.2. `Sum`/`Product` work on any
    /// semiring; `Max`/`Min` require [`LatticeOps`] (see
    /// [`Relation::aggregate_out_lattice`]).
    pub fn aggregate_out(&self, var: Var, op: Aggregate) -> Relation<S> {
        self.aggregate_out_with(var, |a, b| {
            op.apply_semiring(a, b)
                .expect("Max/Min need aggregate_out_lattice")
        })
    }

    /// [`Relation::aggregate_out`] for lattice-capable semirings,
    /// accepting all four aggregate operators.
    pub fn aggregate_out_lattice(&self, var: Var, op: Aggregate) -> Relation<S>
    where
        S: LatticeOps,
    {
        self.aggregate_out_with(var, |a, b| op.apply(a, b))
    }

    fn aggregate_out_with(&self, var: Var, combine: impl Fn(&S, &S) -> S) -> Relation<S> {
        let drop = self.positions(&[var])[0];
        let rest: Vec<Var> = self.schema.iter().copied().filter(|v| *v != var).collect();
        let mut map: HashMap<Tuple, S> = HashMap::with_capacity(self.entries.len());
        for (t, v) in &self.entries {
            let key: Tuple = t
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, x)| *x)
                .collect();
            match map.get_mut(&key) {
                Some(acc) => *acc = combine(acc, v),
                None => {
                    map.insert(key, v.clone());
                }
            }
        }
        let mut out = Relation::new(rest);
        out.entries = map.into_iter().filter(|(_, v)| !v.is_zero()).collect();
        out.normalize();
        out
    }

    /// Natural join `⋈` (Definition 3.4) with `⊗`-multiplied annotations:
    /// the output schema is this schema followed by `other`'s fresh
    /// variables.
    ///
    /// ```
    /// use faqs_relation::Relation;
    /// use faqs_hypergraph::Var;
    /// use faqs_semiring::Count;
    /// let r = Relation::from_pairs(vec![Var(0), Var(1)], [(vec![1, 2], Count(2))]);
    /// let s = Relation::from_pairs(vec![Var(1), Var(2)], [(vec![2, 7], Count(3))]);
    /// let j = r.join(&s);
    /// assert_eq!(j.get(&[1, 2, 7]), Some(&Count(6)));
    /// ```
    pub fn join(&self, other: &Relation<S>) -> Relation<S> {
        let shared = self.shared_vars(other);
        let my_pos = self.positions(&shared);
        let their_pos = other.positions(&shared);
        let fresh: Vec<Var> = other
            .schema
            .iter()
            .copied()
            .filter(|v| !self.schema.contains(v))
            .collect();
        let fresh_pos = other.positions(&fresh);

        // Index the smaller side on the shared variables.
        let mut index: HashMap<Tuple, Vec<usize>> = HashMap::with_capacity(other.len());
        for (i, (t, _)) in other.entries.iter().enumerate() {
            let key: Tuple = their_pos.iter().map(|&p| t[p]).collect();
            index.entry(key).or_default().push(i);
        }

        let mut schema = self.schema.clone();
        schema.extend(fresh.iter().copied());
        let mut out = Relation::new(schema);
        for (t, v) in &self.entries {
            let key: Tuple = my_pos.iter().map(|&p| t[p]).collect();
            let Some(matches) = index.get(&key) else {
                continue;
            };
            for &j in matches {
                let (u, w) = &other.entries[j];
                let prod = v.mul(w);
                if prod.is_zero() {
                    continue;
                }
                let mut tuple: Vec<u32> = t.to_vec();
                tuple.extend(fresh_pos.iter().map(|&p| u[p]));
                out.entries.push((tuple.into_boxed_slice(), prod));
            }
        }
        // Join of duplicate-free inputs is duplicate-free.
        out.normalize();
        out
    }

    /// Semijoin `⋉` (Definition 3.5): keeps this relation's entries whose
    /// projection onto the shared variables appears in `other`
    /// (annotations unchanged — the filtering semantics the BCQ protocols
    /// use, cf. Example 2.1's `((R ⋉ S) ⋉ T) ⋉ U`).
    pub fn semijoin(&self, other: &Relation<S>) -> Relation<S> {
        let shared = self.shared_vars(other);
        let my_pos = self.positions(&shared);
        let their_pos = other.positions(&shared);
        let keys: std::collections::HashSet<Tuple> = other
            .entries
            .iter()
            .map(|(t, _)| their_pos.iter().map(|&p| t[p]).collect())
            .collect();
        let mut out = Relation::new(self.schema.clone());
        out.entries = self
            .entries
            .iter()
            .filter(|(t, _)| {
                let key: Tuple = my_pos.iter().map(|&p| t[p]).collect();
                keys.contains(&key)
            })
            .cloned()
            .collect();
        out
    }

    /// Pointwise `⊗`-product of two relations over the *same* schema
    /// (tuple intersection): the combine step of the distributed star
    /// protocol (Algorithm 1 step 5 / Algorithm 3 step 10).
    pub fn product_same_schema(&self, other: &Relation<S>) -> Relation<S> {
        assert_eq!(self.schema, other.schema, "schemas must match");
        let mut out = Relation::new(self.schema.clone());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let prod = self.entries[i].1.mul(&other.entries[j].1);
                    if !prod.is_zero() {
                        out.entries.push((self.entries[i].0.clone(), prod));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Replaces every annotation with `1` — the "identity map" trick of
    /// Algorithm 3 (step 8) that stops the star center's values being
    /// multiplied in more than once.
    pub fn identity_map(&self) -> Relation<S> {
        let mut out = Relation::new(self.schema.clone());
        out.entries = self
            .entries
            .iter()
            .map(|(t, _)| (t.clone(), S::one()))
            .collect();
        out
    }

    /// `⊕`-total of all annotations: with `F = ∅` this is the FAQ answer
    /// scalar (for BCQ, non-zero ⇔ `true`).
    pub fn total(&self) -> S {
        S::sum(self.entries.iter().map(|(_, v)| v.clone()))
    }

    /// Reorders the schema (and all tuples) to the given permutation of
    /// the current schema.
    pub fn reorder(&self, schema: &[Var]) -> Relation<S> {
        let pos = self.positions(schema);
        assert_eq!(schema.len(), self.schema.len(), "must be a permutation");
        let mut out = Relation::new(schema.to_vec());
        out.entries = self
            .entries
            .iter()
            .map(|(t, v)| {
                let tuple: Tuple = pos.iter().map(|&p| t[p]).collect();
                (tuple, v.clone())
            })
            .collect();
        out.normalize();
        out
    }

    /// The number of bits needed to ship this relation in Model 2.1:
    /// every tuple costs `r · ⌈log₂ D⌉` bits plus the semiring
    /// annotation.
    pub fn bits(&self, domain: u32) -> u64 {
        let per_value = (32 - domain.saturating_sub(1).leading_zeros()).max(1) as u64;
        self.len() as u64 * (self.schema.len() as u64 * per_value + S::value_bits())
    }

    /// Approximate structural equality (same schema, same tuples,
    /// `approx_eq` values) — for float-carrying semirings in tests.
    pub fn approx_eq(&self, other: &Relation<S>) -> bool {
        self.schema == other.schema
            && self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(other.entries.iter())
                .all(|((t, v), (u, w))| t == u && v.approx_eq(w))
    }

    /// Splits the relation into `parts` chunks of near-equal size
    /// (round-robin over the canonical order) — used by the Steiner-tree
    /// pipelining and the hash-split experiments.
    pub fn split(&self, parts: usize) -> Vec<Relation<S>> {
        assert!(parts >= 1);
        let mut out: Vec<Relation<S>> = (0..parts)
            .map(|_| Relation::new(self.schema.clone()))
            .collect();
        for (i, (t, v)) in self.entries.iter().enumerate() {
            out[i % parts].entries.push((t.clone(), v.clone()));
        }
        out
    }

    /// Union of same-schema relations with `⊕`-accumulation of duplicate
    /// tuples (inverse of [`Relation::split`]).
    pub fn union_all(parts: &[Relation<S>]) -> Relation<S> {
        assert!(!parts.is_empty());
        let schema = parts[0].schema.clone();
        let mut map: HashMap<Tuple, S> = HashMap::new();
        for p in parts {
            assert_eq!(p.schema, schema, "schemas must match");
            for (t, v) in &p.entries {
                match map.get_mut(t) {
                    Some(acc) => acc.add_assign(v),
                    None => {
                        map.insert(t.clone(), v.clone());
                    }
                }
            }
        }
        let mut out = Relation::new(schema);
        out.entries = map.into_iter().filter(|(_, v)| !v.is_zero()).collect();
        out.normalize();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faqs_semiring::{Boolean, Count, Prob};

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn count_rel(schema: &[u32], rows: &[(&[u32], u64)]) -> Relation<Count> {
        Relation::from_pairs(
            schema.iter().map(|i| v(*i)).collect(),
            rows.iter().map(|(t, c)| (t.to_vec(), Count(*c))),
        )
    }

    #[test]
    fn insert_accumulates_and_drops_zero() {
        let mut r: Relation<Count> = Relation::new([v(0)]);
        r.insert(vec![1], Count(2));
        r.insert(vec![1], Count(3));
        assert_eq!(r.get(&[1]), Some(&Count(5)));
        r.insert(vec![2], Count(0));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn schema_rejects_duplicates() {
        let _: Relation<Count> = Relation::new([v(0), v(0)]);
    }

    #[test]
    fn projection_aggregates() {
        let r = count_rel(&[0, 1], &[(&[1, 1], 2), (&[1, 2], 3), (&[2, 1], 5)]);
        let p = r.project(&[v(0)]);
        assert_eq!(p.get(&[1]), Some(&Count(5)));
        assert_eq!(p.get(&[2]), Some(&Count(5)));
    }

    #[test]
    fn aggregate_out_matches_project_for_sum() {
        let r = count_rel(&[0, 1], &[(&[1, 1], 2), (&[1, 2], 3), (&[2, 1], 5)]);
        assert_eq!(r.aggregate_out(v(1), Aggregate::Sum), r.project(&[v(0)]));
    }

    #[test]
    fn aggregate_out_max() {
        let r = count_rel(&[0, 1], &[(&[1, 1], 2), (&[1, 2], 3)]);
        let m = r.aggregate_out_lattice(v(1), Aggregate::Max);
        assert_eq!(m.get(&[1]), Some(&Count(3)));
    }

    #[test]
    fn join_multiplies_annotations() {
        let r = count_rel(&[0, 1], &[(&[1, 2], 2)]);
        let s = count_rel(&[1, 2], &[(&[2, 7], 3), (&[9, 9], 1)]);
        let j = r.join(&s);
        assert_eq!(j.schema(), &[v(0), v(1), v(2)]);
        assert_eq!(j.len(), 1);
        assert_eq!(j.get(&[1, 2, 7]), Some(&Count(6)));
    }

    #[test]
    fn join_is_commutative_up_to_reorder() {
        let r = count_rel(&[0, 1], &[(&[1, 2], 2), (&[3, 4], 7)]);
        let s = count_rel(&[1, 2], &[(&[2, 7], 3), (&[4, 1], 5)]);
        let a = r.join(&s);
        let b = s.join(&r).reorder(&[v(0), v(1), v(2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn cartesian_join_when_disjoint() {
        let r = count_rel(&[0], &[(&[1], 1), (&[2], 1)]);
        let s = count_rel(&[1], &[(&[5], 1), (&[6], 1)]);
        assert_eq!(r.join(&s).len(), 4);
    }

    #[test]
    fn semijoin_filters_without_changing_values() {
        let r = count_rel(&[0, 1], &[(&[1, 2], 2), (&[3, 4], 7)]);
        let s = count_rel(&[1, 2], &[(&[2, 9], 1)]);
        let sj = r.semijoin(&s);
        assert_eq!(sj.len(), 1);
        assert_eq!(sj.get(&[1, 2]), Some(&Count(2)));
    }

    #[test]
    fn semijoin_example_2_1_chain() {
        // Set intersection via chained semijoins on single-attribute
        // relations, as in Example 2.1.
        let mk = |xs: &[u32]| {
            Relation::<Boolean>::from_pairs(
                vec![v(0)],
                xs.iter().map(|x| (vec![*x], Boolean::TRUE)),
            )
        };
        let r = mk(&[1, 2, 3, 4]);
        let s = mk(&[2, 3, 9]);
        let t = mk(&[3, 2]);
        let u = mk(&[3]);
        let result = r.semijoin(&s).semijoin(&t).semijoin(&u);
        assert_eq!(result.len(), 1);
        assert!(result.get(&[3]).is_some());
    }

    #[test]
    fn product_same_schema_intersects() {
        let r = count_rel(&[0, 1], &[(&[1, 1], 2), (&[2, 2], 3)]);
        let s = count_rel(&[0, 1], &[(&[1, 1], 10), (&[3, 3], 1)]);
        let p = r.product_same_schema(&s);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(&[1, 1]), Some(&Count(20)));
    }

    #[test]
    fn identity_map_resets_values() {
        let r = count_rel(&[0], &[(&[1], 5), (&[2], 9)]);
        let id = r.identity_map();
        assert_eq!(id.get(&[1]), Some(&Count(1)));
        assert_eq!(id.get(&[2]), Some(&Count(1)));
    }

    #[test]
    fn total_sums_annotations() {
        let r = count_rel(&[0], &[(&[1], 5), (&[2], 9)]);
        assert_eq!(r.total(), Count(14));
    }

    #[test]
    fn full_relation_enumerates_domain() {
        let r: Relation<Boolean> = Relation::full(vec![v(0), v(1)], 3);
        assert_eq!(r.len(), 9);
    }

    #[test]
    fn split_and_union_roundtrip() {
        let r = count_rel(&[0], &[(&[1], 1), (&[2], 2), (&[3], 3), (&[4], 4)]);
        let parts = r.split(3);
        assert_eq!(parts.iter().map(Relation::len).sum::<usize>(), 4);
        assert_eq!(Relation::union_all(&parts), r);
    }

    #[test]
    fn bits_accounts_for_arity_and_domain() {
        let r = count_rel(&[0, 1], &[(&[1, 1], 1)]);
        // 2 vars × 4 bits (domain 16) + 64 value bits.
        assert_eq!(r.bits(16), 2 * 4 + 64);
        let b: Relation<Boolean> = Relation::from_pairs(vec![v(0)], [(vec![1], Boolean::TRUE)]);
        assert_eq!(b.bits(16), 4, "boolean annotations are free");
    }

    #[test]
    fn prob_join_and_project_compose() {
        let r: Relation<Prob> = Relation::from_pairs(
            vec![v(0), v(1)],
            [(vec![0, 0], Prob(0.5)), (vec![0, 1], Prob(0.5))],
        );
        let s: Relation<Prob> = Relation::from_pairs(
            vec![v(1), v(2)],
            [(vec![0, 0], Prob(0.25)), (vec![1, 0], Prob(0.75))],
        );
        let joint = r.join(&s);
        let marginal = joint.project(&[v(2)]);
        assert!(marginal.get(&[0]).unwrap().approx_eq(&Prob(0.5)));
    }

    #[test]
    fn reorder_permutes() {
        let r = count_rel(&[0, 1], &[(&[1, 2], 3)]);
        let p = r.reorder(&[v(1), v(0)]);
        assert_eq!(p.get(&[2, 1]), Some(&Count(3)));
    }
}
