//! Random instance generators for tests, benches and experiments.

use crate::query::FaqQuery;
use crate::relation::Relation;
use faqs_hypergraph::Hypergraph;
use faqs_semiring::{Boolean, Semiring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a random FAQ instance.
#[derive(Clone, Copy, Debug)]
pub struct RandomInstanceConfig {
    /// Listing size per factor (the paper's `N`, up to collisions).
    pub tuples_per_factor: usize,
    /// Uniform domain size `D`.
    pub domain: u32,
    /// RNG seed (instances are deterministic in it).
    pub seed: u64,
}

impl Default for RandomInstanceConfig {
    fn default() -> Self {
        RandomInstanceConfig {
            tuples_per_factor: 32,
            domain: 16,
            seed: 0xFA9,
        }
    }
}

/// Generates a random FAQ-SS instance over semiring `S` with values drawn
/// by `value_of(rng)`; tuples are uniform over the domain (duplicates
/// `⊕`-collapse, so listings may be slightly smaller than requested).
pub fn random_instance<S, F>(
    h: &Hypergraph,
    cfg: &RandomInstanceConfig,
    free_vars: Vec<faqs_hypergraph::Var>,
    mut value_of: F,
) -> FaqQuery<S>
where
    S: Semiring,
    F: FnMut(&mut StdRng) -> S,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let factors = h
        .edges()
        .map(|(_, vars)| {
            let pairs: Vec<(Vec<u32>, S)> = (0..cfg.tuples_per_factor)
                .map(|_| {
                    let t: Vec<u32> = vars
                        .iter()
                        .map(|_| rng.random_range(0..cfg.domain))
                        .collect();
                    (t, value_of(&mut rng))
                })
                .collect();
            Relation::from_pairs(vars.to_vec(), pairs)
        })
        .collect();
    let q = FaqQuery::new_ss(h.clone(), factors, free_vars, cfg.domain);
    q.validate().expect("generator produces valid queries");
    q
}

/// Random BCQ instance. With `satisfiable = true`, a common witness tuple
/// (all variables = 0) is planted in every factor so the answer is
/// guaranteed `true`.
pub fn random_boolean_instance(
    h: &Hypergraph,
    cfg: &RandomInstanceConfig,
    satisfiable: bool,
) -> FaqQuery<Boolean> {
    let mut q = random_instance(h, cfg, vec![], |_| Boolean::TRUE);
    if satisfiable {
        for f in &mut q.factors {
            let arity = f.schema().len();
            f.insert(vec![0; arity], Boolean::TRUE);
        }
    }
    q
}

/// A *hard* star BCQ with `k` leaves over domain `n`: every relation
/// lists all `n` center values (`(x, x mod 5)` pairs), so no upward
/// message shrinks below `n` entries under projection or aggregation —
/// the irreducible instance shared by the bound-conformance fixtures,
/// the `distributed` harness table (E15), and the distributed bench,
/// which pin measurements against it.
pub fn irreducible_star_instance(k: usize, n: u32) -> FaqQuery<Boolean> {
    assert!(n >= 5, "need the (x, x mod 5) witness pairs in-domain");
    let h = faqs_hypergraph::star_query(k);
    let mut b = crate::builder::BcqBuilder::new(&h, n as usize);
    for e in 0..k {
        b.relation_from_pairs(e, (0..n).map(|x| (x, x % 5)));
    }
    b.finish()
}

/// The *skewed* star BCQ with `k` leaves over domain `n`: leaf 1's
/// relation is the full `n × n` cross product while every other leaf
/// lists the `n` thin `(x, x mod 5)` pairs. The canonical GYO run roots
/// the star's join tree at the huge first edge, so a purely structural
/// planner seeds the upward pass with the `n²`-row factor and probes it
/// on every message fold — the adversarial instance the stats-aware
/// planner of `faqs-plan` must re-root away from. Shared by the planner
/// regression tests, the `plan-explain` harness table (E16), and the
/// planner bench, which pin the same instance.
pub fn skewed_star_instance(k: usize, n: u32) -> FaqQuery<Boolean> {
    assert!(k >= 2, "need a thin edge to re-root onto");
    assert!(n >= 5, "need the (x, x mod 5) witness pairs in-domain");
    let h = faqs_hypergraph::star_query(k);
    let mut b = crate::builder::BcqBuilder::new(&h, n as usize);
    b.relation_from_pairs(0, (0..n * n).map(|i| (i / n, i % n)));
    for e in 1..k {
        b.relation_from_pairs(e, (0..n).map(|x| (x, x % 5)));
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faqs_hypergraph::{star_query, Var};
    use faqs_semiring::Prob;

    #[test]
    fn random_instance_is_deterministic() {
        let h = star_query(3);
        let cfg = RandomInstanceConfig::default();
        let a: FaqQuery<Prob> =
            random_instance(&h, &cfg, vec![], |r| Prob(r.random_range(0.0..1.0)));
        let b: FaqQuery<Prob> =
            random_instance(&h, &cfg, vec![], |r| Prob(r.random_range(0.0..1.0)));
        for (x, y) in a.factors.iter().zip(b.factors.iter()) {
            assert!(x.approx_eq(y));
        }
    }

    #[test]
    fn planted_witness_makes_instance_satisfiable() {
        let h = star_query(4);
        let cfg = RandomInstanceConfig {
            tuples_per_factor: 4,
            domain: 64,
            seed: 3,
        };
        let q = random_boolean_instance(&h, &cfg, true);
        for f in &q.factors {
            assert!(f.get(&[0, 0]).is_some(), "witness planted everywhere");
        }
    }

    #[test]
    fn respects_free_vars() {
        let h = star_query(2);
        let cfg = RandomInstanceConfig::default();
        let q = random_boolean_instance(&h, &cfg, false);
        assert!(q.free_vars.is_empty());
        let q2: FaqQuery<Prob> = random_instance(&h, &cfg, vec![Var(0)], |_| Prob(1.0));
        assert_eq!(q2.free_vars, vec![Var(0)]);
    }
}
