//! Listing-representation relations and FAQ query definitions.
//!
//! The paper assumes every input function `f_e : ∏_{v∈e} Dom(v) → D` is
//! given in *listing representation*: the list of its non-zero entries
//! `R_e = {(y, f_e(y)) : f_e(y) ≠ 0}` (Section 1). [`Relation`] is exactly
//! that, stored columnar-style: one flat row-major `Vec<u32>` arena
//! (arity-strided, no per-tuple boxes) plus a parallel annotation column,
//! kept lexicographically sorted. The [`kernel`] module implements the
//! relational-algebra operators the engine and the distributed protocols
//! share — natural join (Definition 3.4), semijoin (Definition 3.5),
//! projection and per-variable `⊕`-aggregation, and the FAQ "push-down"
//! aggregation of Corollary G.2 — as sort-merge / galloping passes over
//! tuple views (`&[u32]` slices), with an explicit reusable [`JoinIndex`]
//! so a factor probed many times is indexed once.
//!
//! [`FaqQuery`] bundles a hypergraph with one relation per hyperedge, the
//! set of free variables `F`, and a per-bound-variable [`Aggregate`]
//! operator — i.e. an instance of Equation (4) of the paper. [`BcqBuilder`]
//! is a convenience layer for the Boolean case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod codec;
mod delta;
mod generators;
mod genjoin;
pub mod kernel;
mod query;
mod relation;
mod snapshot;
mod stats;

pub use builder::BcqBuilder;
pub use codec::{
    frame_bits, frame_bytes, CodecError, FRAME_FIXED_BYTES, FRAME_MAGIC, FRAME_VERSION,
};
pub use delta::{AppliedDelta, DeltaOp, RelationDelta};
pub use faqs_semiring::Aggregate;
pub use generators::{
    irreducible_star_instance, random_boolean_instance, random_instance, skewed_star_instance,
    RandomInstanceConfig,
};
pub use genjoin::generic_join;
pub use kernel::JoinIndex;
pub use query::{FaqQuery, QueryError};
pub use relation::{Relation, Tuple};
pub use snapshot::{Snapshot, SnapshotCell};
pub use stats::{MaintainedStats, RelationStats};
