//! FAQ query instances: Equation (4) of the paper.

use crate::relation::Relation;
use faqs_hypergraph::{EdgeId, Hypergraph, Var};
use faqs_semiring::{Aggregate, Semiring};

/// Validation failure for an FAQ instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// Factor count differs from the hypergraph's edge count.
    FactorCountMismatch {
        /// Number of hyperedges.
        edges: usize,
        /// Number of supplied factors.
        factors: usize,
    },
    /// A factor's schema is not the corresponding hyperedge.
    SchemaMismatch(EdgeId),
    /// A tuple mentions a value outside `[0, domain)`.
    ValueOutOfDomain(EdgeId),
    /// A free variable does not exist in the hypergraph.
    UnknownFreeVar(Var),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::FactorCountMismatch { edges, factors } => {
                write!(f, "{factors} factors for {edges} hyperedges")
            }
            QueryError::SchemaMismatch(e) => write!(f, "factor schema mismatch on {e}"),
            QueryError::ValueOutOfDomain(e) => write!(f, "value out of domain in {e}"),
            QueryError::UnknownFreeVar(v) => write!(f, "unknown free variable {v}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// An FAQ instance (Equation 4):
///
/// `ϕ(x_F) = ⊕^(ℓ+1) … ⊕^(n) ⊗_{e∈E} f_e(x_e)`
///
/// over a commutative semiring `S`, with one listing-representation
/// factor per hyperedge, a set of free variables `F`, and one
/// [`Aggregate`] per variable (ignored for free variables). All variables
/// share the uniform domain `[0, domain)` — `D = max_v |Dom(v)|` in the
/// paper's notation.
#[derive(Clone, Debug)]
pub struct FaqQuery<S: Semiring> {
    /// The query hypergraph `H`.
    pub hypergraph: Hypergraph,
    /// One factor per hyperedge, schema = the edge's sorted variables.
    pub factors: Vec<Relation<S>>,
    /// The free variables `F ⊆ V` (output attributes).
    pub free_vars: Vec<Var>,
    /// Per-variable aggregate `⊕^(i)` for bound variables.
    pub aggregates: Vec<Aggregate>,
    /// Uniform domain size `D`.
    pub domain: u32,
}

impl<S: Semiring> FaqQuery<S> {
    /// Creates an FAQ-SS instance (every bound variable aggregated with
    /// the semiring `⊕`).
    pub fn new_ss(
        hypergraph: Hypergraph,
        factors: Vec<Relation<S>>,
        free_vars: Vec<Var>,
        domain: u32,
    ) -> Self {
        let n = hypergraph.num_vars();
        FaqQuery {
            hypergraph,
            factors,
            free_vars,
            aggregates: vec![Aggregate::Sum; n],
            domain,
        }
    }

    /// Sets the aggregate operator for one bound variable (general FAQ).
    pub fn with_aggregate(mut self, var: Var, op: Aggregate) -> Self {
        self.aggregates[var.index()] = op;
        self
    }

    /// Checks all structural invariants.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.factors.len() != self.hypergraph.num_edges() {
            return Err(QueryError::FactorCountMismatch {
                edges: self.hypergraph.num_edges(),
                factors: self.factors.len(),
            });
        }
        for (e, vars) in self.hypergraph.edges() {
            let f = &self.factors[e.index()];
            if f.schema() != vars {
                return Err(QueryError::SchemaMismatch(e));
            }
            for (t, _) in f.iter() {
                if t.iter().any(|x| *x >= self.domain) {
                    return Err(QueryError::ValueOutOfDomain(e));
                }
            }
        }
        for &v in &self.free_vars {
            if v.index() >= self.hypergraph.num_vars() {
                return Err(QueryError::UnknownFreeVar(v));
            }
        }
        Ok(())
    }

    /// The paper's `N`: the maximum listing size over all factors.
    pub fn n_max(&self) -> usize {
        self.factors.iter().map(Relation::len).max().unwrap_or(0)
    }

    /// The paper's `k = |E|`.
    pub fn k(&self) -> usize {
        self.factors.len()
    }

    /// The paper's `r`: maximum arity.
    pub fn arity(&self) -> usize {
        self.hypergraph.arity()
    }

    /// Whether variable `v` is free.
    pub fn is_free(&self, v: Var) -> bool {
        self.free_vars.contains(&v)
    }

    /// The bound variables, in index order.
    pub fn bound_vars(&self) -> Vec<Var> {
        self.hypergraph
            .vars()
            .filter(|v| !self.is_free(*v))
            .collect()
    }

    /// Total communication size of all factors in bits (Model 2.1
    /// accounting) — what the trivial protocol must move.
    pub fn total_bits(&self) -> u64 {
        self.factors.iter().map(|f| f.bits(self.domain)).sum()
    }

    /// The factor of hyperedge `e`.
    pub fn factor(&self, e: EdgeId) -> &Relation<S> {
        &self.factors[e.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faqs_hypergraph::star_query;
    use faqs_semiring::Boolean;

    fn tiny_query() -> FaqQuery<Boolean> {
        let h = star_query(2);
        let factors = h
            .edges()
            .map(|(_, vars)| {
                Relation::from_pairs(
                    vars.to_vec(),
                    [(vec![0, 0], Boolean::TRUE), (vec![1, 1], Boolean::TRUE)],
                )
            })
            .collect();
        FaqQuery::new_ss(h, factors, vec![], 4)
    }

    #[test]
    fn valid_query_passes() {
        tiny_query().validate().unwrap();
    }

    #[test]
    fn detects_factor_count_mismatch() {
        let mut q = tiny_query();
        q.factors.pop();
        assert!(matches!(
            q.validate(),
            Err(QueryError::FactorCountMismatch { .. })
        ));
    }

    #[test]
    fn detects_schema_mismatch() {
        let mut q = tiny_query();
        q.factors[0] = Relation::new([Var(0)]);
        assert_eq!(q.validate(), Err(QueryError::SchemaMismatch(EdgeId(0))));
    }

    #[test]
    fn detects_out_of_domain_value() {
        let mut q = tiny_query();
        q.domain = 1;
        assert_eq!(q.validate(), Err(QueryError::ValueOutOfDomain(EdgeId(0))));
    }

    #[test]
    fn detects_unknown_free_var() {
        let mut q = tiny_query();
        q.free_vars = vec![Var(99)];
        assert_eq!(q.validate(), Err(QueryError::UnknownFreeVar(Var(99))));
    }

    #[test]
    fn accessors() {
        let q = tiny_query();
        assert_eq!(q.n_max(), 2);
        assert_eq!(q.k(), 2);
        assert_eq!(q.arity(), 2);
        assert!(q.bound_vars().contains(&Var(0)));
        assert!(!q.is_free(Var(0)));
    }

    #[test]
    fn aggregate_override() {
        let q = tiny_query().with_aggregate(Var(1), Aggregate::Max);
        assert_eq!(q.aggregates[1], Aggregate::Max);
        assert_eq!(q.aggregates[0], Aggregate::Sum);
    }
}
