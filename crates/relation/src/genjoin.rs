//! The worst-case-optimal **generic join**: a multiway leapfrog
//! intersection over the sorted columnar arenas.
//!
//! A binary join cascade over a cyclic bag (triangle, 4-cycle, clique)
//! can materialise an intermediate quadratically larger than the final
//! output — exactly the blow-up the AGM bound says is avoidable. The
//! generic join of Ngo–Porat–Ré–Rudra instead binds one variable at a
//! time: at each depth it intersects the current-column value runs of
//! every factor containing that variable, narrowing each factor's live
//! row range before recursing. Its running time is within a log factor
//! of the fractional-edge-cover (AGM) output bound, for *any* query.
//!
//! The implementation leans on the crate's arena invariants: rows are
//! lexicographically sorted and strictly increasing, so once a factor is
//! reordered to bind its columns in `var_order` order, every per-depth
//! value run is contiguous and max-driven galloping (`gallop`) finds
//! intersection candidates in `O(log run)` per step. Output tuples are
//! discovered in lexicographic `var_order` order, so the final
//! [`Relation::from_columns`] takes the already-sorted fast path and the
//! whole operator performs a single bulk canonicalisation sweep.
//!
//! **Bit-identity with the cascade.** At full depth the annotation is
//! the left-fold `(…(v₀ ⊗ v₁) ⊗ v₂…)` over the factors *in slice
//! order* — the same association order a binary cascade over the same
//! factor order produces. Exact semirings are trivially equal; for
//! float-carried ones (`MinPlus`) equal association order makes the
//! results bit-identical, which the differential suites assert.

use crate::kernel::row;
use crate::relation::Relation;
use faqs_hypergraph::Var;
use faqs_semiring::Semiring;

/// First row index in `[lo, hi)` whose `col`-column satisfies `pred`,
/// assuming `pred` is monotone (false… then true…) over the range —
/// which holds for `>= v` / `> v` predicates on a sorted column run.
/// Gallops from `lo` (runs are short and near), then binary-searches.
#[inline]
fn gallop(
    data: &[u32],
    arity: usize,
    col: usize,
    mut lo: usize,
    hi: usize,
    pred: impl Fn(u32) -> bool,
) -> usize {
    if lo >= hi || pred(data[lo * arity + col]) {
        return lo;
    }
    if !crate::kernel::kernel_scalar() {
        // Fixed-width strided prescan: leapfrog runs are short, so the
        // first match almost always sits within a lane of the cursor.
        // The lane tests accumulate branch-free (monotone `pred` makes
        // the miss count the offset of the first match), and only a
        // fully-missing prescan falls through to the exponential probe.
        const LANES: usize = 4;
        if hi - lo > LANES {
            let mut misses = 0usize;
            for j in 0..LANES {
                misses += usize::from(!pred(data[(lo + 1 + j) * arity + col]));
            }
            if misses < LANES {
                return lo + 1 + misses;
            }
            // All LANES lanes miss: `pred(lo + LANES)` is false, the
            // gallop invariant, so restart the exponential probe there.
            lo += LANES;
        }
    }
    let mut step = 1usize;
    let mut base = lo;
    while base + step < hi && !pred(data[(base + step) * arity + col]) {
        base += step;
        step <<= 1;
    }
    let (mut l, mut h) = (base + 1, (base + step).min(hi));
    while l < h {
        let m = l + (h - l) / 2;
        if pred(data[m * arity + col]) {
            h = m;
        } else {
            l = m + 1;
        }
    }
    l
}

/// The annotation sources at emit time, in original factor order, so the
/// `⊗`-fold associates exactly like the equivalent binary cascade.
enum EmitSource<S> {
    /// Proper factor: index into the per-depth range table.
    Factor(usize),
    /// Nullary factor: its single annotation, folded in-position.
    Scalar(S),
}

struct GenJoin<'a, S: Semiring> {
    /// Arena + arity of each proper (arity ≥ 1) factor, reordered so its
    /// columns bind in `var_order` order.
    arenas: Vec<(&'a [u32], usize)>,
    values: Vec<&'a [S]>,
    /// `active[d]` = the `(factor, col)` pairs binding `var_order[d]`.
    active: Vec<Vec<(usize, usize)>>,
    /// `ranges[d][f]` = factor `f`'s live row range entering depth `d`.
    ranges: Vec<Vec<(usize, usize)>>,
    emit: Vec<EmitSource<S>>,
    prefix: Vec<u32>,
    out_data: Vec<u32>,
    out_values: Vec<S>,
}

impl<S: Semiring> GenJoin<'_, S> {
    fn recurse(&mut self, depth: usize) {
        if depth == self.active.len() {
            self.emit_row();
            return;
        }
        loop {
            // Max-driven alignment: propose the largest current head
            // value, gallop every active factor up to it, and repeat
            // until all heads agree (or some factor is exhausted).
            let mut v = 0u32;
            for &(f, c) in &self.active[depth] {
                let (lo, hi) = self.ranges[depth][f];
                if lo >= hi {
                    return;
                }
                let (data, ar) = self.arenas[f];
                v = v.max(row(data, ar, lo)[c]);
            }
            let mut aligned = false;
            while !aligned {
                aligned = true;
                for &(f, c) in &self.active[depth] {
                    let (lo, hi) = self.ranges[depth][f];
                    let (data, ar) = self.arenas[f];
                    let lo2 = gallop(data, ar, c, lo, hi, |x| x >= v);
                    if lo2 >= hi {
                        return;
                    }
                    self.ranges[depth][f].0 = lo2;
                    let head = row(data, ar, lo2)[c];
                    if head > v {
                        v = head;
                        aligned = false;
                    }
                }
            }
            // All active heads sit on `v`: narrow to the value runs and
            // bind `var_order[depth] = v` one level down.
            self.prefix[depth] = v;
            let (cur, rest) = self.ranges.split_at_mut(depth + 1);
            rest[0].copy_from_slice(&cur[depth]);
            for &(f, c) in &self.active[depth] {
                let (lo, hi) = cur[depth][f];
                let (data, ar) = self.arenas[f];
                let end = gallop(data, ar, c, lo, hi, |x| x > v);
                rest[0][f] = (lo, end);
            }
            self.recurse(depth + 1);
            // Advance each active factor past the consumed run.
            for &(f, _) in &self.active[depth] {
                let end = self.ranges[depth + 1][f].1;
                let (_, hi) = self.ranges[depth][f];
                if end >= hi {
                    return;
                }
                self.ranges[depth][f].0 = end;
            }
        }
    }

    fn emit_row(&mut self) {
        let depth = self.active.len();
        let mut acc: Option<S> = None;
        for src in &self.emit {
            let v = match src {
                EmitSource::Scalar(s) => s,
                EmitSource::Factor(f) => {
                    // Every column of factor `f` is bound and rows are
                    // strictly increasing, so the live range is 1 row.
                    let (lo, hi) = self.ranges[depth][*f];
                    debug_assert_eq!(hi - lo, 1, "fully bound factor run");
                    &self.values[*f][lo]
                }
            };
            acc = Some(match acc {
                None => v.clone(),
                Some(a) => a.mul(v),
            });
        }
        let acc = acc.expect("generic join over no factors");
        if !acc.is_zero() {
            self.out_data.extend_from_slice(&self.prefix);
            self.out_values.push(acc);
        }
    }
}

/// Joins `factors` into one relation over exactly `var_order` (which
/// must equal the union of the factor schemas), visiting output tuples
/// in a single worst-case-optimal multiway pass.
///
/// Factors whose schema does not already bind its columns in
/// `var_order` order are reordered once up front; nullary factors
/// contribute their scalar annotation at emit time, in slice position.
/// The annotation of an output tuple is the in-order `⊗`-fold of the
/// matching factor annotations — the same association order as the
/// binary cascade over the same factor order, so the two lowerings
/// agree bit-for-bit on every semiring in the workspace.
///
/// ```
/// use faqs_hypergraph::Var;
/// use faqs_relation::{generic_join, Relation};
/// use faqs_semiring::Count;
/// let e = |a, b| {
///     Relation::from_pairs(vec![Var(a), Var(b)], vec![
///         (vec![0, 1], Count(1)),
///         (vec![1, 2], Count(1)),
///         (vec![2, 0], Count(1)),
///         (vec![0, 2], Count(1)),
///     ])
/// };
/// // Triangles of the 3-cycle: one multiway pass, no quadratic
/// // intermediate.
/// let t = generic_join(&[&e(0, 1), &e(1, 2), &e(0, 2)], &[Var(0), Var(1), Var(2)]);
/// assert_eq!(t.len(), 1, "exactly the triangle (0,1,2) survives");
/// ```
pub fn generic_join<S: Semiring>(factors: &[&Relation<S>], var_order: &[Var]) -> Relation<S> {
    assert!(!factors.is_empty(), "generic join over no factors");
    debug_assert!(
        factors
            .iter()
            .all(|f| f.schema().iter().all(|v| var_order.contains(v))),
        "factor schema outside var_order"
    );
    if factors.iter().any(|f| f.is_empty()) {
        return Relation::new(var_order.to_vec());
    }

    // Reorder each proper factor so its columns bind in var_order
    // order; skip the copy when the schema already agrees.
    let mut reordered: Vec<Option<Relation<S>>> = Vec::with_capacity(factors.len());
    let mut emit = Vec::with_capacity(factors.len());
    let mut n_proper = 0usize;
    for f in factors {
        if f.schema().is_empty() {
            emit.push(EmitSource::Scalar(f.value_at(0).clone()));
            reordered.push(None);
            continue;
        }
        let target: Vec<Var> = var_order
            .iter()
            .copied()
            .filter(|v| f.schema().contains(v))
            .collect();
        emit.push(EmitSource::Factor(n_proper));
        n_proper += 1;
        reordered.push(if f.schema() == target {
            None
        } else {
            Some(f.reorder(&target))
        });
    }
    // `reordered` owns the copies; borrow originals or copies in one
    // pass (indices in `emit` were assigned in the same order).
    let proper: Vec<&Relation<S>> = factors
        .iter()
        .zip(&reordered)
        .filter(|(f, _)| !f.schema().is_empty())
        .map(|(f, r)| r.as_ref().unwrap_or(f))
        .collect();

    let k = var_order.len();
    let mut active: Vec<Vec<(usize, usize)>> = vec![Vec::new(); k];
    for (fi, f) in proper.iter().enumerate() {
        for (col, v) in f.schema().iter().enumerate() {
            let d = var_order.iter().position(|w| w == v).expect("var in order");
            active[d].push((fi, col));
        }
    }
    assert!(
        active.iter().all(|a| !a.is_empty()),
        "every var_order variable must be bound by some factor"
    );

    let init: Vec<(usize, usize)> = proper.iter().map(|f| (0, f.len())).collect();
    let mut gj = GenJoin {
        arenas: proper
            .iter()
            .map(|f| (f.raw_data(), f.schema().len()))
            .collect(),
        values: proper.iter().map(|f| f.raw_values()).collect(),
        active,
        ranges: vec![init; k + 1],
        emit,
        prefix: vec![0; k],
        out_data: Vec::new(),
        out_values: Vec::new(),
    };
    gj.recurse(0);
    // Tuples were emitted in lexicographic order, so this is the
    // sorted fast path: no re-sort, one zero sweep at most.
    Relation::from_columns(var_order.to_vec(), gj.out_data, gj.out_values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faqs_semiring::{Count, MinPlus};

    fn edge(a: u32, b: u32, rows: &[(u32, u32)]) -> Relation<Count> {
        Relation::from_pairs(
            vec![Var(a), Var(b)],
            rows.iter()
                .map(|&(x, y)| (vec![x, y], Count(1)))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn triangle_matches_the_cascade() {
        let r = edge(0, 1, &[(0, 1), (0, 2), (1, 2), (3, 3)]);
        let s = edge(1, 2, &[(1, 2), (2, 0), (2, 2), (3, 3)]);
        let t = edge(0, 2, &[(0, 2), (1, 0), (3, 3)]);
        let cascade = r.join(&s).join(&t);
        let gj = generic_join(&[&r, &s, &t], &[Var(0), Var(1), Var(2)]);
        assert_eq!(gj, cascade.reorder(&[Var(0), Var(1), Var(2)]));
        assert!(!gj.is_empty());
    }

    #[test]
    fn empty_factor_short_circuits() {
        let r = edge(0, 1, &[(0, 1)]);
        let s: Relation<Count> = Relation::new(vec![Var(1), Var(2)]);
        let gj = generic_join(&[&r, &s], &[Var(0), Var(1), Var(2)]);
        assert!(gj.is_empty());
        assert_eq!(gj.schema(), &[Var(0), Var(1), Var(2)]);
    }

    #[test]
    fn scalars_fold_in_position() {
        let r = edge(0, 1, &[(0, 1), (1, 0)]);
        let two = Relation::from_pairs(vec![], vec![(vec![], Count(2))]);
        let gj = generic_join(&[&two, &r], &[Var(0), Var(1)]);
        assert_eq!(gj.len(), 2);
        assert!(gj.iter().all(|(_, v)| *v == Count(2)));
    }

    #[test]
    fn minplus_is_bit_identical_to_the_cascade() {
        let w = |a: u32, b: u32, rows: &[(u32, u32, f64)]| {
            Relation::from_pairs(
                vec![Var(a), Var(b)],
                rows.iter()
                    .map(|&(x, y, c)| (vec![x, y], MinPlus(c)))
                    .collect::<Vec<_>>(),
            )
        };
        let r = w(0, 1, &[(0, 1, 0.1), (1, 2, 0.7), (2, 0, 1.3)]);
        let s = w(1, 2, &[(1, 2, 0.3), (2, 0, 2.9), (0, 1, 0.2)]);
        let t = w(0, 2, &[(0, 2, 1.7), (1, 0, 0.5), (2, 1, 0.9)]);
        let cascade = r.join(&s).join(&t).reorder(&[Var(0), Var(1), Var(2)]);
        let gj = generic_join(&[&r, &s, &t], &[Var(0), Var(1), Var(2)]);
        assert_eq!(gj.len(), cascade.len());
        for (i, (tu, v)) in gj.iter().enumerate() {
            assert_eq!(tu, cascade.tuple_at(i));
            assert_eq!(v.0.to_bits(), cascade.value_at(i).0.to_bits(), "bit drift");
        }
    }

    #[test]
    fn unsorted_factor_schemas_are_reordered() {
        // Factor listed as (2,0) — column order disagrees with
        // var_order and must be fixed up internally.
        let r = edge(0, 1, &[(0, 1), (1, 2)]);
        let s = Relation::from_pairs(
            vec![Var(2), Var(0)],
            vec![(vec![5, 0], Count(1)), (vec![7, 1], Count(1))],
        );
        let gj = generic_join(&[&r, &s], &[Var(0), Var(1), Var(2)]);
        let cascade = r.join(&s).reorder(&[Var(0), Var(1), Var(2)]);
        assert_eq!(gj, cascade);
    }

    #[test]
    fn gallop_finds_first_match() {
        let data: Vec<u32> = vec![0, 1, 1, 3, 3, 3, 7, 9];
        for target in 0..11 {
            let got = gallop(&data, 1, 0, 0, data.len(), |x| x >= target);
            let want = data.iter().position(|&x| x >= target).unwrap_or(data.len());
            assert_eq!(got, want, "target {target}");
        }
    }
}
