//! Convenience builder for Boolean Conjunctive Query instances.

use crate::query::FaqQuery;
use crate::relation::Relation;
use faqs_hypergraph::{EdgeId, Hypergraph};
use faqs_semiring::Boolean;

/// Builds a [`FaqQuery`] over the Boolean semiring with `F = ∅` — the
/// BCQ instantiation of Section 1.
///
/// Relations default to empty; fill them per hyperedge with
/// [`BcqBuilder::relation_from_tuples`] (arbitrary arity) or
/// [`BcqBuilder::relation_from_pairs`] (binary edges).
pub struct BcqBuilder {
    hypergraph: Hypergraph,
    factors: Vec<Relation<Boolean>>,
    domain: u32,
}

impl BcqBuilder {
    /// Starts a builder for hypergraph `h` with uniform domain `[0,
    /// domain)`.
    pub fn new(h: &Hypergraph, domain: usize) -> Self {
        let factors = h
            .edges()
            .map(|(_, vars)| Relation::new(vars.to_vec()))
            .collect();
        BcqBuilder {
            hypergraph: h.clone(),
            factors,
            domain: domain as u32,
        }
    }

    /// Sets the relation of edge `e` from full tuples (schema order =
    /// the edge's sorted variable order).
    pub fn relation_from_tuples<I>(&mut self, e: usize, tuples: I) -> &mut Self
    where
        I: IntoIterator<Item = Vec<u32>>,
    {
        let schema = self.hypergraph.edge(EdgeId(e as u32)).to_vec();
        self.factors[e] =
            Relation::from_pairs(schema, tuples.into_iter().map(|t| (t, Boolean::TRUE)));
        self
    }

    /// Sets the relation of a *binary* edge `e` from `(a, b)` pairs.
    pub fn relation_from_pairs<I>(&mut self, e: usize, pairs: I) -> &mut Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        assert_eq!(
            self.hypergraph.edge(EdgeId(e as u32)).len(),
            2,
            "relation_from_pairs requires a binary edge"
        );
        self.relation_from_tuples(e, pairs.into_iter().map(|(a, b)| vec![a, b]))
    }

    /// Sets the relation of a *unary* edge `e` from single values
    /// (the self-loop relations of Example 2.1).
    pub fn relation_from_values<I>(&mut self, e: usize, values: I) -> &mut Self
    where
        I: IntoIterator<Item = u32>,
    {
        assert_eq!(
            self.hypergraph.edge(EdgeId(e as u32)).len(),
            1,
            "relation_from_values requires a unary edge"
        );
        self.relation_from_tuples(e, values.into_iter().map(|a| vec![a]))
    }

    /// Fills edge `e` with the complete relation `[0, domain)^r` (the
    /// `[N] × {1}`-style paddings of the lower-bound constructions use a
    /// restricted variant of this).
    pub fn relation_full(&mut self, e: usize) -> &mut Self {
        let schema = self.hypergraph.edge(EdgeId(e as u32)).to_vec();
        self.factors[e] = Relation::full(schema, self.domain);
        self
    }

    /// Finalises the BCQ instance (`F = ∅`).
    pub fn finish(&mut self) -> FaqQuery<Boolean> {
        let q = FaqQuery::new_ss(
            self.hypergraph.clone(),
            std::mem::take(&mut self.factors),
            vec![],
            self.domain,
        );
        q.validate().expect("builder produces valid queries");
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faqs_hypergraph::{example_h0, star_query};

    #[test]
    fn builds_star_instance() {
        let h = star_query(3);
        let mut b = BcqBuilder::new(&h, 8);
        for e in 0..3 {
            b.relation_from_pairs(e, (0..8).map(|i| (i, i)));
        }
        let q = b.finish();
        assert_eq!(q.k(), 3);
        assert_eq!(q.n_max(), 8);
    }

    #[test]
    fn builds_self_loop_instance() {
        let h = example_h0();
        let mut b = BcqBuilder::new(&h, 16);
        for e in 0..4 {
            b.relation_from_values(e, 0..16);
        }
        let q = b.finish();
        assert_eq!(q.arity(), 1);
        assert_eq!(q.n_max(), 16);
    }

    #[test]
    #[should_panic(expected = "binary edge")]
    fn pairs_require_binary_edges() {
        let h = example_h0();
        BcqBuilder::new(&h, 4).relation_from_pairs(0, [(0, 0)]);
    }

    #[test]
    fn full_relation_builder() {
        let h = star_query(2);
        let q = BcqBuilder::new(&h, 3)
            .relation_full(0)
            .relation_full(1)
            .finish();
        assert_eq!(q.factor(faqs_hypergraph::EdgeId(0)).len(), 9);
    }
}
