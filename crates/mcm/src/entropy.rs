//! Min-entropy computations for the Section 6 lower bound.
//!
//! The paper's `Ω(kN)` bound rests on an induction (Lemma 6.2) showing
//! that after `t_i = γ·i·N/4` rounds, `y_{i−1}` still has min-entropy
//! `≥ N(1 − γ − √(2γ))` given the transcripts — Shannon entropy provably
//! cannot run the induction (Appendix I.3, see [`crate::shannon`]). This
//! module computes the relevant quantities *exactly* for small `N`:
//!
//! * [`min_entropy`] / [`conditional_min_entropy`] on explicit
//!   distributions,
//! * [`transcript_experiment`]: the truncated-protocol experiment — fix
//!   the chain matrices, enumerate all `2^N` inputs, truncate every
//!   link's traffic to a `t_i`-bit prefix, and measure
//!   `H∞(y_k | transcripts)` exactly,
//! * [`leaky_matrix_min_entropy`]: the Theorem 6.3 quantity
//!   `H∞(Ax | leak)` when `A` is uniform with `ℓ` leaked rows and `x`
//!   ranges over a source of min-entropy `αN`, computed in closed form
//!   by enumerating the source.

use crate::bits::{BitMatrix, BitVec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// `H∞(X) = −log₂ max_x Pr[X = x]` of an explicit distribution
/// (probabilities need not be normalised; they are normalised first).
pub fn min_entropy<K: std::hash::Hash + Eq>(dist: &HashMap<K, f64>) -> f64 {
    let total: f64 = dist.values().sum();
    assert!(total > 0.0, "empty distribution");
    let max = dist.values().fold(0.0f64, |a, &b| a.max(b)) / total;
    -max.log2()
}

/// Worst-case conditional min-entropy `min_y H∞(X | Y = y)` of a joint
/// distribution given as `(y, x) → mass`.
pub fn conditional_min_entropy<Y, X>(joint: &HashMap<(Y, X), f64>) -> f64
where
    Y: std::hash::Hash + Eq + Clone,
    X: std::hash::Hash + Eq + Clone,
{
    let mut per_y: HashMap<Y, (f64, f64)> = HashMap::new(); // (total, max)
    for ((y, _), &mass) in joint {
        let e = per_y.entry(y.clone()).or_insert((0.0, 0.0));
        e.0 += mass;
        e.1 = e.1.max(mass);
    }
    per_y
        .values()
        .map(|&(total, max)| -(max / total).log2())
        .fold(f64::INFINITY, f64::min)
}

/// Result of the truncated-protocol transcript experiment.
#[derive(Clone, Debug)]
pub struct TranscriptExperiment {
    /// Dimension `N`.
    pub n: usize,
    /// Chain length `k`.
    pub k: usize,
    /// Per-link truncations `t_1 … t_{k+1}` in bits.
    pub truncation_bits: Vec<usize>,
    /// Exact `min` over transcripts of `H∞(y_k | transcript)`.
    pub worst_case_entropy: f64,
    /// The paper's target `N(1 − γ − √(2γ))` for the given `γ`.
    pub paper_bound: f64,
    /// The `γ` used.
    pub gamma: f64,
}

/// Runs the Lemma 6.2 experiment on the *sequential protocol truncated
/// to the paper's budgets*: link `i` (carrying `y_{i−1}`) only delivers
/// its first `t_i = ⌈γ·i·N/4⌉` bits. The chain matrices are sampled
/// uniformly (fixed by `seed`); `x` is uniform over `F₂^N` and fully
/// enumerated, so the reported conditional min-entropy is exact for the
/// sampled matrices.
///
/// Requires `N ≤ 20` (enumeration is `2^N · k`).
pub fn transcript_experiment(n: usize, k: usize, gamma: f64, seed: u64) -> TranscriptExperiment {
    assert!(n <= 20, "exact enumeration needs N ≤ 20");
    assert!(n <= 64);
    let mut rng = StdRng::seed_from_u64(seed);
    let matrices: Vec<BitMatrix> = (0..k)
        .map(|_| BitMatrix::random_invertible(n, &mut rng))
        .collect();

    // Truncations t_i = γ·i·N/4 for links i = 1..k+1 (link i carries
    // y_{i-1}).
    let truncation_bits: Vec<usize> = (1..=k + 1)
        .map(|i| ((gamma * i as f64 * n as f64) / 4.0).ceil() as usize)
        .map(|t| t.min(n))
        .collect();

    // Enumerate x; group by transcript tuple; measure y_k's conditional
    // min-entropy in the worst transcript group.
    let mut groups: HashMap<Vec<u64>, HashMap<u64, f64>> = HashMap::new();
    for enc in 0..(1u64 << n) {
        let mut y = BitVec::from_u64(n, enc);
        let mut transcript = Vec::with_capacity(k + 1);
        for (i, t) in truncation_bits.iter().enumerate() {
            transcript.push(y.prefix_key(*t));
            if i < k {
                y = matrices[i].mul_vec(&y);
            }
        }
        *groups
            .entry(transcript)
            .or_default()
            .entry(y.to_u64())
            .or_insert(0.0) += 1.0;
    }
    let worst_case_entropy = groups
        .values()
        .map(min_entropy)
        .fold(f64::INFINITY, f64::min);

    TranscriptExperiment {
        n,
        k,
        truncation_bits,
        worst_case_entropy,
        paper_bound: n as f64 * (1.0 - gamma - (2.0 * gamma).sqrt()),
        gamma,
    }
}

/// Result of the Theorem 6.3 leaky-matrix computation.
#[derive(Clone, Debug)]
pub struct LeakyMatrixReport {
    /// `H∞(x)` of the source (exact: `log₂ |S|`).
    pub source_entropy: f64,
    /// `H∞(A | leak)`-equivalent: `N² − ℓ·N` (uniform matrix, `ℓ` rows
    /// leaked).
    pub matrix_entropy: f64,
    /// Exact worst-case `H∞(Ax | leak)` over the sampled leaks.
    pub output_entropy: f64,
    /// The theorem's target `(1 − √(2γ))·N`.
    pub paper_bound: f64,
}

/// Computes `H∞(Ax | leaked rows)` exactly: `A` uniform over `F₂^{N×N}`
/// with its first `ℓ` rows revealed, `x` uniform over a source set `S`
/// (so `H∞(x) = log₂|S|`). Conditioned on a leak `L`, the first `ℓ`
/// coordinates of `Ax` equal `L·x` while the rest are uniform, so
///
/// `Pr[Ax = z | L] = (Σ_{x∈S: Lx = z_head} 1/|S|) · 2^{−(N−ℓ)}`
/// (plus the `x = 0` atom, handled by enumeration),
///
/// and the min-entropy follows from the heaviest head bucket. The leak
/// is sampled `trials` times; the worst case is reported.
pub fn leaky_matrix_min_entropy(
    n: usize,
    source: &[BitVec],
    leaked_rows: usize,
    gamma: f64,
    trials: usize,
    seed: u64,
) -> LeakyMatrixReport {
    assert!(leaked_rows <= n);
    assert!(!source.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut worst = f64::INFINITY;
    for _ in 0..trials.max(1) {
        // Sample the leaked rows.
        let leak: Vec<BitVec> = (0..leaked_rows)
            .map(|_| BitVec::random(n, &mut rng))
            .collect();
        // Head buckets: L·x over the source.
        let mut buckets: HashMap<u64, f64> = HashMap::new();
        let mut zero_mass = 0.0f64;
        for x in source {
            let head: u64 = leak
                .iter()
                .enumerate()
                .map(|(i, row)| (row.dot(x) as u64) << i)
                .fold(0, |a, b| a | b);
            if x.to_u64() == 0 {
                // Ax = 0 deterministically for x = 0.
                zero_mass += 1.0 / source.len() as f64;
            } else {
                *buckets.entry(head).or_insert(0.0) += 1.0 / source.len() as f64;
            }
        }
        let tail = n - leaked_rows;
        let max_bucket = buckets.values().fold(0.0f64, |a, &b| a.max(b));
        // Max point probability of Ax: the heaviest head bucket spread
        // uniformly over 2^tail tails, or the x = 0 atom.
        let max_prob = (max_bucket / 2f64.powi(tail as i32)).max(zero_mass);
        if max_prob > 0.0 {
            worst = worst.min(-max_prob.log2());
        }
    }
    LeakyMatrixReport {
        source_entropy: (source.len() as f64).log2(),
        matrix_entropy: (n * n - leaked_rows * n) as f64,
        output_entropy: worst,
        paper_bound: (1.0 - (2.0 * gamma).sqrt()) * n as f64,
    }
}

/// A canonical min-entropy source: the `2^m` vectors whose last
/// `N − m` coordinates are zero (`H∞ = m`).
pub fn prefix_source(n: usize, m: usize) -> Vec<BitVec> {
    assert!(m <= n && m <= 20);
    (0..(1u64 << m)).map(|e| BitVec::from_u64(n, e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_entropy_uniform() {
        let dist: HashMap<u64, f64> = (0..8u64).map(|i| (i, 1.0)).collect();
        assert!((min_entropy(&dist) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn min_entropy_peaked() {
        let mut dist: HashMap<u64, f64> = HashMap::new();
        dist.insert(0, 0.5);
        dist.insert(1, 0.25);
        dist.insert(2, 0.25);
        assert!((min_entropy(&dist) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conditional_takes_worst_y() {
        let mut joint: HashMap<(u8, u8), f64> = HashMap::new();
        // y = 0: uniform over two xs (1 bit); y = 1: deterministic (0 bits).
        joint.insert((0, 0), 0.25);
        joint.insert((0, 1), 0.25);
        joint.insert((1, 0), 0.5);
        assert!((conditional_min_entropy(&joint) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn transcript_experiment_keeps_entropy_high() {
        // N = 12, k = 3, γ = 0.05: budgets t_i ≤ γ(k+1)N/4 ≈ 2.4 bits per
        // link; the conditional min-entropy of y_k must stay near N minus
        // the leaked bits and in particular above the paper's bound.
        let e = transcript_experiment(12, 3, 0.05, 7);
        assert!(
            e.worst_case_entropy >= e.paper_bound,
            "H∞ = {} vs bound {}",
            e.worst_case_entropy,
            e.paper_bound
        );
        // Leaked bits cap the loss: H∞ ≥ N − Σ t_i.
        let leaked: usize = e.truncation_bits.iter().sum();
        assert!(e.worst_case_entropy >= (e.n as f64 - leaked as f64) - 1e-9);
    }

    #[test]
    fn transcript_entropy_decreases_with_gamma() {
        let lo = transcript_experiment(10, 2, 0.05, 3);
        let hi = transcript_experiment(10, 2, 0.4, 3);
        assert!(lo.worst_case_entropy >= hi.worst_case_entropy);
    }

    #[test]
    fn leaky_matrix_meets_theorem_bound() {
        // γ = 0.02: α = 3γ + √(2γ) + h(√2γ) ≈ 0.98 → need H∞(x) ≈ αN.
        let n = 14;
        let gamma = 0.02f64;
        let h = |p: f64| -p * p.log2() - (1.0 - p) * (1.0 - p).log2();
        let alpha = 3.0 * gamma + (2.0 * gamma).sqrt() + h((2.0 * gamma).sqrt());
        let m = (alpha * n as f64).ceil() as usize;
        let source = prefix_source(n, m.min(n));
        let leaked = ((gamma * (n * n) as f64) / n as f64).floor() as usize; // ℓ·N ≤ γN²
        let rep = leaky_matrix_min_entropy(n, &source, leaked, gamma, 5, 11);
        assert!(
            rep.output_entropy >= rep.paper_bound - 1e-9,
            "H∞(Ax|leak) = {} vs (1−√2γ)N = {}",
            rep.output_entropy,
            rep.paper_bound
        );
        assert!(rep.matrix_entropy >= (1.0 - gamma) * (n * n) as f64);
    }

    #[test]
    fn prefix_source_has_advertised_entropy() {
        let s = prefix_source(10, 4);
        assert_eq!(s.len(), 16);
        let dist: HashMap<u64, f64> = s.iter().map(|v| (v.to_u64(), 1.0)).collect();
        assert!((min_entropy(&dist) - 4.0).abs() < 1e-9);
    }
}
