//! The matrix-chain protocols on the line (Section 6, Appendix I.1).

use crate::bits::{chain_product, BitMatrix, BitVec};
use faqs_network::{NetRun, Player, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// An instance of Problem 1.1: `x` at `P0`, `A_i` at `P_i`, answer
/// wanted at `P_{k+1}`, with `capacity_bits` per link per round (the
/// two-party convention of footnote 12 is 1 bit).
///
/// ```
/// use faqs_mcm::{sequential_protocol, McmProblem};
/// let p = McmProblem::random(32, 4, 1, 9);
/// let out = sequential_protocol(&p);
/// assert_eq!(out.y, p.expected());          // correct product
/// assert_eq!(out.rounds, 5 * 32);           // (k+1)·N — Proposition 6.1
/// ```
#[derive(Clone)]
pub struct McmProblem {
    /// Dimension `N`.
    pub n: usize,
    /// The matrices `A_1 … A_k` in application order.
    pub matrices: Vec<BitMatrix>,
    /// The input vector `x`.
    pub x: BitVec,
    /// Per-link capacity in bits per round.
    pub capacity_bits: u64,
}

impl McmProblem {
    /// A random instance, deterministic in the seed.
    pub fn random(n: usize, k: usize, capacity_bits: u64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        McmProblem {
            n,
            matrices: (0..k).map(|_| BitMatrix::random(n, &mut rng)).collect(),
            x: BitVec::random(n, &mut rng),
            capacity_bits,
        }
    }

    /// Chain length `k`.
    pub fn k(&self) -> usize {
        self.matrices.len()
    }

    /// The true answer `A_k ⋯ A_1 x`.
    pub fn expected(&self) -> BitVec {
        chain_product(&self.matrices, &self.x)
    }

    fn line(&self) -> Topology {
        Topology::line(self.k() + 2).with_uniform_capacity(self.capacity_bits)
    }
}

/// The result of an MCM protocol run.
#[derive(Clone, Debug)]
pub struct McmOutcome {
    /// The vector delivered at `P_{k+1}`.
    pub y: BitVec,
    /// Measured rounds.
    pub rounds: u64,
    /// Total bits moved.
    pub total_bits: u64,
    /// The closed-form prediction for this protocol.
    pub predicted_rounds: u64,
}

/// **Proposition 6.1** — the natural protocol: `P_i` waits for
/// `y_{i−1}`, computes `y_i = A_i·y_{i−1}`, forwards it. Every hop must
/// wait for the full vector (each output bit depends on all input bits),
/// so the cost is `(k+1)·⌈N/B⌉ ≈ Θ(kN)` rounds at `B = 1`.
pub fn sequential_protocol(p: &McmProblem) -> McmOutcome {
    let g = p.line();
    let mut run = NetRun::new(&g);
    let n_bits = p.n as u64;

    let mut y = p.x.clone();
    let mut ready = 1u64; // round at which the current holder may send
    for i in 0..=p.k() {
        let from = Player(i as u32);
        let to = Player(i as u32 + 1);
        let done = run
            .transmit(from, to, n_bits, ready)
            .expect("line neighbours");
        // The receiver applies its matrix (free local computation).
        if i < p.k() {
            y = p.matrices[i].mul_vec(&y);
        }
        ready = done + 1;
    }
    let stats = run.stats();
    McmOutcome {
        y,
        rounds: stats.rounds,
        total_bits: stats.total_bits,
        predicted_rounds: (p.k() as u64 + 1) * n_bits.div_ceil(p.capacity_bits),
    }
}

/// **Appendix I.1** — the bottom-up merge: in iteration `t`, range
/// products of `2^{t−1}` matrices hop `2^{t−1}` players right and merge,
/// costing `N²/B + 2^{t−1} − 1` rounds each (pipelined); after
/// `⌈log₂ k⌉` iterations `P_k` holds `A_k ⋯ A_1`, meets `x` (sent
/// concurrently), and forwards the product vector. Total
/// `O(N²·log k + k)` — the better choice once `k ≫ N log k`.
pub fn merge_protocol(p: &McmProblem) -> McmOutcome {
    let g = p.line();
    let mut run = NetRun::new(&g);
    let k = p.k();
    let n2 = (p.n * p.n) as u64;

    // Range products: (lo, hi, product A_hi⋯A_lo, holder P_hi, ready).
    struct Range {
        hi: usize,
        product: BitMatrix,
        ready: u64,
    }
    let mut ranges: Vec<Range> = (1..=k)
        .map(|i| Range {
            hi: i,
            product: p.matrices[i - 1].clone(),
            ready: 1,
        })
        .collect();

    // x travels toward P_k concurrently, chunk-pipelined.
    let x_arrival = run
        .send_via_shortest_path(Player(0), Player(k as u32), p.n as u64, 1)
        .expect("line is connected");

    while ranges.len() > 1 {
        let mut next: Vec<Range> = Vec::with_capacity(ranges.len().div_ceil(2));
        let mut it = ranges.into_iter();
        while let Some(left) = it.next() {
            match it.next() {
                Some(right) => {
                    // Left's product moves to right's holder, pipelined.
                    let done = run
                        .send_via_shortest_path(
                            Player(left.hi as u32),
                            Player(right.hi as u32),
                            n2,
                            left.ready,
                        )
                        .expect("line is connected");
                    next.push(Range {
                        hi: right.hi,
                        product: right.product.mul(&left.product),
                        ready: done.max(right.ready) + 1,
                    });
                }
                None => next.push(left),
            }
        }
        ranges = next;
    }
    let last = ranges.pop().expect("k >= 1");
    debug_assert_eq!(last.hi, k);

    // P_k computes y = M·x and forwards it to P_{k+1}.
    let y = last.product.mul_vec(&p.x);
    let send_ready = last.ready.max(x_arrival + 1);
    run.transmit(
        Player(k as u32),
        Player(k as u32 + 1),
        p.n as u64,
        send_ready,
    )
    .expect("line neighbours");

    let stats = run.stats();
    let log_k = (k.max(2) as u64).ilog2() as u64 + 1;
    McmOutcome {
        y,
        rounds: stats.rounds,
        total_bits: stats.total_bits,
        predicted_rounds: n2.div_ceil(p.capacity_bits) * log_k + k as u64,
    }
}

/// The trivial protocol: every `A_i` ships to `P_{k+1}` (the last link
/// carries all `k·N²` bits — `Θ(kN²)` rounds at `B = 1`).
pub fn trivial_protocol(p: &McmProblem) -> McmOutcome {
    let g = p.line();
    let mut run = NetRun::new(&g);
    let k = p.k();
    let n2 = (p.n * p.n) as u64;
    let sink = Player(k as u32 + 1);
    for i in 1..=k {
        run.send_via_shortest_path(Player(i as u32), sink, n2, 1)
            .expect("line is connected");
    }
    run.send_via_shortest_path(Player(0), sink, p.n as u64, 1)
        .expect("line is connected");
    let y = p.expected(); // sink has everything: free local computation
    let stats = run.stats();
    McmOutcome {
        y,
        rounds: stats.rounds,
        total_bits: stats.total_bits,
        predicted_rounds: (k as u64) * n2.div_ceil(p.capacity_bits),
    }
}

/// Matrices shuffled uniformly along the line (Section 6's contrast
/// case): the partial product must *visit the matrices in chain order*,
/// walking `Θ(k)` legs of expected length `Θ(k)`. With per-hop
/// store-and-forward (`pipelined = false`) each leg costs
/// `dist·N/B` rounds — the paper's `Θ(k²N)`; with chunk pipelining each
/// leg costs `N/B + dist`, i.e. `Θ(kN + k²)`.
pub fn random_assignment_protocol(p: &McmProblem, seed: u64, pipelined: bool) -> McmOutcome {
    let g = p.line();
    let mut run = NetRun::new(&g);
    let k = p.k();
    let n_bits = p.n as u64;

    let mut order: Vec<usize> = (1..=k).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    // position[i] = player index holding A_{i+1}.
    let mut position = vec![0usize; k + 1];
    for (slot, &holder) in order.iter().enumerate() {
        position[slot + 1] = holder;
    }

    let mut y = p.x.clone();
    let mut cur = Player(0);
    let mut ready = 1u64;
    let mut total_distance = 0u64;
    for (i, &pos) in position.iter().enumerate().skip(1) {
        let target = Player(pos as u32);
        let dist = g.distance(cur, target).unwrap_or(0) as u64;
        total_distance += dist;
        let done = if pipelined {
            run.send_via_shortest_path(cur, target, n_bits, ready)
                .expect("line is connected")
        } else {
            send_store_and_forward(&mut run, cur, target, n_bits, ready)
        };
        y = p.matrices[i - 1].mul_vec(&y);
        cur = target;
        ready = done + 1;
    }
    let sink = Player(k as u32 + 1);
    let dist = g.distance(cur, sink).unwrap_or(0) as u64;
    total_distance += dist;
    if pipelined {
        run.send_via_shortest_path(cur, sink, n_bits, ready)
            .expect("line is connected");
    } else {
        send_store_and_forward(&mut run, cur, sink, n_bits, ready);
    }

    let stats = run.stats();
    let per_hop = n_bits.div_ceil(p.capacity_bits);
    let predicted = if pipelined {
        (k as u64 + 1) * per_hop + total_distance
    } else {
        total_distance * per_hop
    };
    McmOutcome {
        y,
        rounds: stats.rounds,
        total_bits: stats.total_bits,
        predicted_rounds: predicted,
    }
}

/// Whole-message store-and-forward along the line: every relay waits
/// for the complete vector before forwarding (`dist · N/B` rounds).
fn send_store_and_forward(
    run: &mut NetRun<'_>,
    from: Player,
    to: Player,
    bits: u64,
    ready: u64,
) -> u64 {
    if from == to {
        return ready.max(1) - 1;
    }
    let step: i64 = if to.0 > from.0 { 1 } else { -1 };
    let mut cur = from;
    let mut t = ready.max(1) - 1;
    while cur != to {
        let next = Player((cur.0 as i64 + step) as u32);
        t = run
            .transmit(cur, next, bits, t + 1)
            .expect("line neighbours");
        cur = next;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_protocols_agree_with_ground_truth() {
        let p = McmProblem::random(16, 5, 1, 42);
        let expected = p.expected();
        assert_eq!(sequential_protocol(&p).y, expected);
        assert_eq!(merge_protocol(&p).y, expected);
        assert_eq!(trivial_protocol(&p).y, expected);
        assert_eq!(random_assignment_protocol(&p, 7, true).y, expected);
        assert_eq!(random_assignment_protocol(&p, 7, false).y, expected);
    }

    #[test]
    fn sequential_rounds_are_theta_kn() {
        // Proposition 6.1: (k+1)·N rounds at B = 1.
        let (n, k) = (32, 6);
        let p = McmProblem::random(n, k, 1, 1);
        let out = sequential_protocol(&p);
        assert_eq!(out.rounds, ((k + 1) * n) as u64);
        assert_eq!(out.rounds, out.predicted_rounds);
    }

    #[test]
    fn trivial_is_theta_k_n_squared() {
        let (n, k) = (16, 5);
        let p = McmProblem::random(n, k, 1, 2);
        let out = trivial_protocol(&p);
        // Last link carries k·N² bits (plus x's N): at least k·N² rounds.
        assert!(out.rounds >= (k * n * n) as u64);
        assert!(out.rounds <= (k * n * n + n + k + 2) as u64);
    }

    #[test]
    fn merge_beats_sequential_for_huge_k() {
        // k ≫ N log k: merge O(N² log k + k) < sequential Θ(kN).
        let (n, k) = (8, 192);
        let p = McmProblem::random(n, k, 1, 3);
        let seq = sequential_protocol(&p);
        let merge = merge_protocol(&p);
        assert_eq!(seq.y, merge.y);
        assert!(
            merge.rounds < seq.rounds,
            "merge {} < sequential {}",
            merge.rounds,
            seq.rounds
        );
    }

    #[test]
    fn sequential_beats_merge_for_k_below_n() {
        // The paper's regime k ≤ N: Θ(kN) beats Θ(N² log k).
        let (n, k) = (64, 8);
        let p = McmProblem::random(n, k, 1, 4);
        let seq = sequential_protocol(&p);
        let merge = merge_protocol(&p);
        assert!(
            seq.rounds < merge.rounds,
            "sequential {} < merge {}",
            seq.rounds,
            merge.rounds
        );
    }

    #[test]
    fn random_assignment_is_slower_than_ordered() {
        let (n, k) = (32, 12);
        let p = McmProblem::random(n, k, 1, 5);
        let seq = sequential_protocol(&p);
        let rand_pip = random_assignment_protocol(&p, 9, true);
        let rand_sf = random_assignment_protocol(&p, 9, false);
        assert!(rand_pip.rounds >= seq.rounds);
        // Store-and-forward pays dist·N per leg: Θ(k²N/3) ≫ kN.
        assert!(
            rand_sf.rounds > 2 * seq.rounds,
            "store-and-forward {} vs sequential {}",
            rand_sf.rounds,
            seq.rounds
        );
    }

    #[test]
    fn capacity_scales_rounds_down() {
        let p1 = McmProblem::random(32, 4, 1, 6);
        let p8 = McmProblem {
            capacity_bits: 8,
            ..p1.clone()
        };
        let r1 = sequential_protocol(&p1).rounds;
        let r8 = sequential_protocol(&p8).rounds;
        assert_eq!(r1, 8 * r8);
    }

    #[test]
    fn merge_handles_non_power_of_two() {
        for k in [1usize, 2, 3, 5, 7, 11] {
            let p = McmProblem::random(8, k, 2, 100 + k as u64);
            assert_eq!(merge_protocol(&p).y, p.expected(), "k = {k}");
        }
    }
}
