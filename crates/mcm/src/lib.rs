//! Matrix Chain Multiplication over `F₂` on a line (Section 6 of the
//! paper) and its min-entropy lower-bound machinery.
//!
//! Problem 1.1: player `P0` holds `x ∈ F₂^N`, player `Pi` holds
//! `A_i ∈ F₂^{N×N}` for `i ∈ [k]`, the topology is the line
//! `P0 — P1 — … — P(k+1)`, and `P(k+1)` must learn
//! `A_k · A_{k−1} ⋯ A_1 · x`. This crate provides:
//!
//! * bit-packed vectors and matrices over `F₂` ([`BitVec`], [`BitMatrix`])
//!   with the chain product as ground truth,
//! * the four protocols the paper discusses, each run on the round
//!   scheduler with real data:
//!   [`sequential_protocol`] (Proposition 6.1, `Θ(kN)`),
//!   [`merge_protocol`] (Appendix I.1, `O(N²·log k + k)`),
//!   [`trivial_protocol`] (ship everything, `Θ(kN²)`), and
//!   [`random_assignment_protocol`] (matrices shuffled along the line),
//! * exact **min-entropy** computations ([`entropy`]): `H∞`, conditional
//!   min-entropy, the transcript experiment behind Lemma 6.2, and the
//!   leaky-matrix computation behind Theorem 6.3,
//! * the **Shannon-entropy counterexample** of Appendix I.3
//!   ([`shannon`]), showing why the induction needs min-entropy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
pub mod entropy;
mod protocols;
pub mod shannon;

pub use bits::{BitMatrix, BitVec};
pub use protocols::{
    merge_protocol, random_assignment_protocol, sequential_protocol, trivial_protocol, McmOutcome,
    McmProblem,
};
