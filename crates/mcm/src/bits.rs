//! Bit-packed linear algebra over `F₂`.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// A vector in `F₂^N`, packed 64 bits per word.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    n: usize,
    words: Vec<u64>,
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.n {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

impl BitVec {
    /// The zero vector of dimension `n`.
    pub fn zero(n: usize) -> Self {
        BitVec {
            n,
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// A uniformly random vector (deterministic in the RNG).
    pub fn random(n: usize, rng: &mut StdRng) -> Self {
        let mut v = BitVec::zero(n);
        for w in &mut v.words {
            *w = rng.random();
        }
        v.mask_tail();
        v
    }

    /// Builds from bits (little-endian by index).
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = BitVec::zero(bits.len());
        for (i, b) in bits.iter().enumerate() {
            v.set(i, *b);
        }
        v
    }

    /// Builds the `n`-bit vector encoding the integer `enc` (bit `i` of
    /// `enc` = coordinate `i`). Panics if `n > 64`.
    pub fn from_u64(n: usize, enc: u64) -> Self {
        assert!(n <= 64);
        let mut v = BitVec::zero(n);
        v.words[0] = if n == 64 { enc } else { enc & ((1 << n) - 1) };
        v
    }

    /// The integer encoding (inverse of [`BitVec::from_u64`]).
    pub fn to_u64(&self) -> u64 {
        assert!(self.n <= 64);
        self.words.first().copied().unwrap_or(0)
    }

    /// Dimension `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Coordinate `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.n);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets coordinate `i`.
    #[inline]
    pub fn set(&mut self, i: usize, b: bool) {
        debug_assert!(i < self.n);
        if b {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// In-place XOR (`self ⊕= other`).
    pub fn xor_assign(&mut self, other: &BitVec) {
        debug_assert_eq!(self.n, other.n);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Inner product over `F₂`.
    pub fn dot(&self, other: &BitVec) -> bool {
        debug_assert_eq!(self.n, other.n);
        let mut acc = 0u64;
        for (a, b) in self.words.iter().zip(&other.words) {
            acc ^= a & b;
        }
        acc.count_ones() % 2 == 1
    }

    /// The first `t` coordinates as a transcript prefix key.
    pub fn prefix_key(&self, t: usize) -> u64 {
        assert!(t <= 64 && t <= self.n);
        if t == 0 {
            return 0;
        }
        let mask = if t == 64 { u64::MAX } else { (1 << t) - 1 };
        self.words[0] & mask
    }

    fn mask_tail(&mut self) {
        let rem = self.n % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// A matrix in `F₂^{N×N}`, row-major bit-packed.
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    rows: Vec<BitVec>,
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{}:", self.n, self.n)?;
        for r in &self.rows {
            writeln!(f, "  {r:?}")?;
        }
        Ok(())
    }
}

impl BitMatrix {
    /// The zero matrix.
    pub fn zero(n: usize) -> Self {
        BitMatrix {
            n,
            rows: vec![BitVec::zero(n); n],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zero(n);
        for i in 0..n {
            m.rows[i].set(i, true);
        }
        m
    }

    /// A uniformly random matrix.
    pub fn random(n: usize, rng: &mut StdRng) -> Self {
        BitMatrix {
            n,
            rows: (0..n).map(|_| BitVec::random(n, rng)).collect(),
        }
    }

    /// A uniformly random *invertible* matrix (rejection sampling).
    pub fn random_invertible(n: usize, rng: &mut StdRng) -> Self {
        loop {
            let m = BitMatrix::random(n, rng);
            if m.rank() == n {
                return m;
            }
        }
    }

    /// Dimension `N`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.rows[row].get(col)
    }

    /// Sets entry `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, b: bool) {
        self.rows[row].set(col, b);
    }

    /// Row `i` as a bit vector.
    pub fn row(&self, i: usize) -> &BitVec {
        &self.rows[i]
    }

    /// Matrix–vector product `A·x` over `F₂`.
    pub fn mul_vec(&self, x: &BitVec) -> BitVec {
        debug_assert_eq!(self.n, x.len());
        let mut out = BitVec::zero(self.n);
        for (i, row) in self.rows.iter().enumerate() {
            out.set(i, row.dot(x));
        }
        out
    }

    /// Matrix product `self · other`.
    pub fn mul(&self, other: &BitMatrix) -> BitMatrix {
        debug_assert_eq!(self.n, other.n);
        let n = self.n;
        // Transpose other for row-dot-row products.
        let tr = other.transpose();
        let mut out = BitMatrix::zero(n);
        for i in 0..n {
            for j in 0..n {
                out.rows[i].set(j, self.rows[i].dot(&tr.rows[j]));
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> BitMatrix {
        let n = self.n;
        let mut out = BitMatrix::zero(n);
        for i in 0..n {
            for j in 0..n {
                if self.get(i, j) {
                    out.set(j, i, true);
                }
            }
        }
        out
    }

    /// Rank over `F₂` (Gaussian elimination on a copy).
    pub fn rank(&self) -> usize {
        let mut rows: Vec<BitVec> = self.rows.clone();
        let mut rank = 0;
        for col in 0..self.n {
            let Some(pivot) = (rank..rows.len()).find(|&r| rows[r].get(col)) else {
                continue;
            };
            rows.swap(rank, pivot);
            let pivot_row = rows[rank].clone();
            for (r, row) in rows.iter_mut().enumerate() {
                if r != rank && row.get(col) {
                    row.xor_assign(&pivot_row);
                }
            }
            rank += 1;
        }
        rank
    }

    /// The number of bits a matrix transmission costs: `N²`.
    pub fn bits(&self) -> u64 {
        (self.n * self.n) as u64
    }
}

/// The chain product `A_k ⋯ A_1 · x` computed centrally (ground truth).
pub fn chain_product(matrices: &[BitMatrix], x: &BitVec) -> BitVec {
    let mut y = x.clone();
    for a in matrices {
        y = a.mul_vec(&y);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn identity_fixes_vectors() {
        let mut r = rng(1);
        let x = BitVec::random(65, &mut r);
        let id = BitMatrix::identity(65);
        assert_eq!(id.mul_vec(&x), x);
    }

    #[test]
    fn mat_vec_matches_manual() {
        // [[1,1],[0,1]] · [1,0] = [1,0]; · [0,1] = [1,1].
        let mut m = BitMatrix::zero(2);
        m.set(0, 0, true);
        m.set(0, 1, true);
        m.set(1, 1, true);
        assert_eq!(m.mul_vec(&BitVec::from_u64(2, 0b01)).to_u64(), 0b01);
        assert_eq!(m.mul_vec(&BitVec::from_u64(2, 0b10)).to_u64(), 0b11);
    }

    #[test]
    fn matrix_product_associates_with_mul_vec() {
        let mut r = rng(2);
        for n in [3usize, 8, 17, 64, 70] {
            let a = BitMatrix::random(n, &mut r);
            let b = BitMatrix::random(n, &mut r);
            let x = BitVec::random(n, &mut r);
            let ab = a.mul(&b);
            assert_eq!(ab.mul_vec(&x), a.mul_vec(&b.mul_vec(&x)), "n = {n}");
        }
    }

    #[test]
    fn transpose_involution() {
        let mut r = rng(3);
        let a = BitMatrix::random(20, &mut r);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn rank_of_identity_and_zero() {
        assert_eq!(BitMatrix::identity(10).rank(), 10);
        assert_eq!(BitMatrix::zero(10).rank(), 0);
    }

    #[test]
    fn random_invertible_has_full_rank() {
        let mut r = rng(4);
        let a = BitMatrix::random_invertible(12, &mut r);
        assert_eq!(a.rank(), 12);
    }

    #[test]
    fn chain_product_matches_iterated() {
        let mut r = rng(5);
        let ms: Vec<BitMatrix> = (0..4).map(|_| BitMatrix::random(9, &mut r)).collect();
        let x = BitVec::random(9, &mut r);
        let direct = chain_product(&ms, &x);
        let folded = ms
            .iter()
            .rev()
            .fold(BitMatrix::identity(9), |acc, m| acc.mul(m));
        // folded = A1ᵀ-order trap check: acc·m folds left-to-right over
        // reversed list, i.e. A4·A3·A2·A1.
        assert_eq!(folded.mul_vec(&x), direct);
    }

    #[test]
    fn prefix_key_truncates() {
        let v = BitVec::from_u64(8, 0b1011_0110);
        assert_eq!(v.prefix_key(4), 0b0110);
        assert_eq!(v.prefix_key(0), 0);
        assert_eq!(v.prefix_key(8), 0b1011_0110);
    }

    #[test]
    fn dot_product_parity() {
        let a = BitVec::from_u64(4, 0b1101);
        let b = BitVec::from_u64(4, 0b1011);
        // overlap = {0, 3} → even → false.
        assert!(!a.dot(&b));
        let c = BitVec::from_u64(4, 0b0001);
        assert!(a.dot(&c));
    }

    #[test]
    fn from_bits_roundtrip() {
        let bits = [true, false, true, true];
        let v = BitVec::from_bits(bits);
        assert_eq!(v.to_u64(), 0b1101);
        assert_eq!(v.len(), 4);
    }
}
