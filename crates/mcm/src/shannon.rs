//! The Shannon-entropy counterexample of Appendix I.3: why Lemma 6.2's
//! induction *must* use min-entropy.
//!
//! Construction: fix linearly independent `x*_1 … x*_t` with `t = αN`
//! and let `x` put mass `1−α` uniformly on their span `S` and mass `α`
//! uniformly on the complement. Then `H_Sh(x) = 2α(1−α)N + O(1)`; but
//! against the leak `f(A) = (A·x*_1, …, A·x*_t)` the *useful* residual
//! entropy collapses: whenever `x ∈ S`, `A·x` is a known linear
//! combination of the leaked images — conditioned on `(f(A), x)` it has
//! zero entropy — so
//!
//! `H_Sh(Ax | f(A), x) ≈ α·N ≈ H_Sh(x) / (2(1−α))`,
//!
//! a constant-factor *drop* below `H_Sh(x)`. A chain-rule induction that
//! needs the entropy to stay `≥ H_Sh(x)` therefore fails, while the
//! min-entropy argument of Theorem 6.3 goes through.

use crate::bits::{BitMatrix, BitVec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Exact Shannon entropy of an explicit distribution.
pub fn shannon_entropy<K: std::hash::Hash + Eq>(dist: &HashMap<K, f64>) -> f64 {
    let total: f64 = dist.values().sum();
    assert!(total > 0.0);
    dist.values()
        .filter(|&&p| p > 0.0)
        .map(|&p| {
            let q = p / total;
            -q * q.log2()
        })
        .sum()
}

/// The numbers of the Appendix I.3 counterexample.
#[derive(Clone, Debug)]
pub struct ShannonCounterexample {
    /// Dimension `N`.
    pub n: usize,
    /// Span dimension `t = αN`.
    pub t: usize,
    /// The mixing weight `α`.
    pub alpha: f64,
    /// Exact `H_Sh(x)` of the two-part source.
    pub input_entropy: f64,
    /// The paper's closed form `2α(1−α)N` (up to `O(1)`).
    pub input_entropy_formula: f64,
    /// Monte-Carlo average of `H_Sh(Ax | f(A), x ∈ S?)` — the residual
    /// entropy available to the induction.
    pub residual_entropy: f64,
    /// The paper's ceiling for it: `α·N`.
    pub residual_formula: f64,
}

impl ShannonCounterexample {
    /// Whether the counterexample fires: the residual entropy drops
    /// strictly below the input entropy (so a Shannon chain-rule
    /// induction cannot maintain its invariant).
    pub fn induction_fails(&self) -> bool {
        self.residual_entropy < self.input_entropy - 0.5
    }
}

/// Computes the counterexample exactly for small `N` (enumeration over
/// `F₂^N`; Monte-Carlo over `trials` uniform matrices `A`).
pub fn shannon_counterexample(
    n: usize,
    alpha: f64,
    trials: usize,
    seed: u64,
) -> ShannonCounterexample {
    assert!((4..=16).contains(&n), "exact enumeration needs 4 ≤ N ≤ 16");
    assert!(alpha > 0.0 && alpha < 0.5);
    let t = ((alpha * n as f64).round() as usize).clamp(1, n - 1);
    let span_size = 1u64 << t;
    let total = 1u64 << n;

    // Source: x*_i = e_i, span S = vectors supported on the first t
    // coordinates; mass 1−α uniform on S, mass α uniform on the rest.
    let prob_of = |enc: u64| -> f64 {
        if enc < span_size {
            (1.0 - alpha) / span_size as f64
        } else {
            alpha / (total - span_size) as f64
        }
    };
    let x_dist: HashMap<u64, f64> = (0..total).map(|e| (e, prob_of(e))).collect();
    let input_entropy = shannon_entropy(&x_dist);

    // Residual entropy: E_A [ Σ_x p(x) · H_Sh(Ax | f(A), x-part) ] where
    // the conditional entropy is 0 for x ∈ S (Ax determined by the leak)
    // and, for x ∉ S, the entropy of Ax given A's first-t-column images
    // (computed exactly by enumerating the source part).
    let mut rng = StdRng::seed_from_u64(seed);
    let mut residual_acc = 0.0;
    for _ in 0..trials.max(1) {
        let a = BitMatrix::random(n, &mut rng);
        // For x ∉ S: conditioned on f(A) = images of the span basis, Ax
        // for the non-span coordinates is still uniform-ish; compute the
        // exact distribution of Ax over the complement part.
        let mut comp_dist: HashMap<u64, f64> = HashMap::new();
        for enc in span_size..total {
            let y = a.mul_vec(&BitVec::from_u64(n, enc));
            *comp_dist.entry(y.to_u64()).or_insert(0.0) += 1.0;
        }
        let comp_entropy = shannon_entropy(&comp_dist);
        // x ∈ S contributes zero (Ax is a known combination of the leak).
        residual_acc += alpha * comp_entropy;
    }
    let residual_entropy = residual_acc / trials.max(1) as f64;

    ShannonCounterexample {
        n,
        t,
        alpha,
        input_entropy,
        input_entropy_formula: 2.0 * alpha * (1.0 - alpha) * n as f64,
        residual_entropy,
        residual_formula: alpha * n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shannon_entropy_uniform() {
        let dist: HashMap<u64, f64> = (0..16u64).map(|i| (i, 1.0)).collect();
        assert!((shannon_entropy(&dist) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn counterexample_fires() {
        let c = shannon_counterexample(12, 0.25, 4, 5);
        assert!(
            c.induction_fails(),
            "residual {} must undercut input {}",
            c.residual_entropy,
            c.input_entropy
        );
    }

    #[test]
    fn input_entropy_tracks_formula() {
        let c = shannon_counterexample(14, 0.25, 1, 6);
        // H_Sh(x) = (1−α)·t + α·log₂(2^N − 2^t) + h-ish terms: the paper's
        // 2α(1−α)N is the leading behaviour; allow O(1) + binary-entropy
        // slack.
        assert!(
            (c.input_entropy - c.input_entropy_formula).abs() <= 2.5,
            "exact {} vs formula {}",
            c.input_entropy,
            c.input_entropy_formula
        );
    }

    #[test]
    fn residual_stays_near_alpha_n() {
        let c = shannon_counterexample(12, 0.25, 4, 7);
        // Residual ≈ α·(entropy of Ax on the complement) ≤ α·N, and close
        // to it for random A.
        assert!(c.residual_entropy <= c.residual_formula + 1e-9);
        assert!(c.residual_entropy >= 0.8 * c.residual_formula);
    }

    #[test]
    fn gap_grows_with_n() {
        let small = shannon_counterexample(8, 0.25, 3, 8);
        let large = shannon_counterexample(14, 0.25, 3, 8);
        let gap = |c: &ShannonCounterexample| c.input_entropy - c.residual_entropy;
        assert!(gap(&large) > gap(&small));
    }
}
