//! The probability semiring `(ℝ≥0, +, ×)` and the Viterbi / max-product
//! semiring `(ℝ≥0, max, ×)`.

use crate::traits::{LatticeOps, Semiring};

const EPS: f64 = 1e-9;

/// The probability (sum-product) semiring `(ℝ≥0, +, ×)`.
///
/// This is the semiring used by the paper's PGM application: with `F = e`
/// for some hyperedge `e`, FAQ-SS computes a *factor marginal* of the
/// graphical model whose factors are the input functions.
#[derive(Clone, Copy, PartialEq, Debug, Default, PartialOrd)]
pub struct Prob(pub f64);

impl Prob {
    /// Creates a probability value, panicking on negative or non-finite
    /// input (the carrier is ℝ≥0).
    pub fn new(v: f64) -> Self {
        assert!(
            v.is_finite() && v >= 0.0,
            "Prob requires finite v >= 0, got {v}"
        );
        Prob(v)
    }

    /// Returns the inner float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl From<f64> for Prob {
    fn from(v: f64) -> Self {
        Prob::new(v)
    }
}

impl Semiring for Prob {
    const NAME: &'static str = "probability";
    // ℝ≥0 cancellation is *approximate*: float rounding means
    // `(a + b) - b` need not be bit-identical to `a`, so delta-maintained
    // answers over `Prob` are exact only up to `approx_eq`. The result is
    // clamped at 0 to stay inside the carrier.
    const HAS_ADDITIVE_INVERSE: bool = true;

    #[inline]
    fn checked_sub(&self, other: &Self) -> Option<Self> {
        Some(Prob((self.0 - other.0).max(0.0)))
    }

    #[inline]
    fn zero() -> Self {
        Prob(0.0)
    }

    #[inline]
    fn one() -> Self {
        Prob(1.0)
    }

    #[inline]
    fn add(&self, other: &Self) -> Self {
        Prob(self.0 + other.0)
    }

    #[inline]
    fn mul(&self, other: &Self) -> Self {
        Prob(self.0 * other.0)
    }

    #[inline]
    fn is_zero(&self) -> bool {
        self.0 == 0.0
    }

    fn approx_eq(&self, other: &Self) -> bool {
        let scale = self.0.abs().max(other.0.abs()).max(1.0);
        (self.0 - other.0).abs() <= EPS * scale
    }

    // IEEE-754 bit pattern, little-endian: the round trip is exact.
    #[inline]
    fn write_wire(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }

    #[inline]
    fn read_wire(bytes: &[u8]) -> Self {
        Prob(f64::from_le_bytes(bytes.try_into().expect("8-byte value")))
    }
}

impl LatticeOps for Prob {
    #[inline]
    fn join(&self, other: &Self) -> Self {
        Prob(self.0.max(other.0))
    }

    #[inline]
    fn meet(&self, other: &Self) -> Self {
        Prob(self.0.min(other.0))
    }

    fn max_forms_semiring() -> bool {
        // (ℝ≥0, max, ×) has identities 0 and 1 and a·max(b,c) = max(ab,ac)
        // for a ≥ 0: a legal alternative aggregate for bound variables.
        true
    }

    fn min_forms_semiring() -> bool {
        false // identity of min on ℝ≥0 would be +∞, outside the carrier.
    }
}

/// The max-product (Viterbi) semiring `(ℝ≥0, max, ×)`.
///
/// Instantiating FAQ-SS with [`MaxProd`] computes maximum a-posteriori
/// (MAP) scores in a PGM — one of the classic non-sum examples listed in
/// the generalized-distributive-law literature the paper cites.
#[derive(Clone, Copy, PartialEq, Debug, Default, PartialOrd)]
pub struct MaxProd(pub f64);

impl MaxProd {
    /// Creates a value, panicking on negative or non-finite input.
    pub fn new(v: f64) -> Self {
        assert!(
            v.is_finite() && v >= 0.0,
            "MaxProd requires finite v >= 0, got {v}"
        );
        MaxProd(v)
    }

    /// Returns the inner float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Semiring for MaxProd {
    const NAME: &'static str = "max-product";

    #[inline]
    fn zero() -> Self {
        MaxProd(0.0)
    }

    #[inline]
    fn one() -> Self {
        MaxProd(1.0)
    }

    #[inline]
    fn add(&self, other: &Self) -> Self {
        MaxProd(self.0.max(other.0))
    }

    #[inline]
    fn mul(&self, other: &Self) -> Self {
        MaxProd(self.0 * other.0)
    }

    #[inline]
    fn is_zero(&self) -> bool {
        self.0 == 0.0
    }

    fn approx_eq(&self, other: &Self) -> bool {
        let scale = self.0.abs().max(other.0.abs()).max(1.0);
        (self.0 - other.0).abs() <= EPS * scale
    }

    #[inline]
    fn write_wire(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }

    #[inline]
    fn read_wire(bytes: &[u8]) -> Self {
        MaxProd(f64::from_le_bytes(bytes.try_into().expect("8-byte value")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prob_identities() {
        assert!(Prob::zero().is_zero());
        assert_eq!(Prob::one().get(), 1.0);
    }

    #[test]
    fn prob_arithmetic() {
        assert!(Prob(0.25).add(&Prob(0.5)).approx_eq(&Prob(0.75)));
        assert!(Prob(0.25).mul(&Prob(0.5)).approx_eq(&Prob(0.125)));
    }

    #[test]
    fn prob_checked_sub_clamps_at_zero() {
        assert!(Prob(0.75)
            .checked_sub(&Prob(0.5))
            .unwrap()
            .approx_eq(&Prob(0.25)));
        // Over-cancellation (float drift past zero) clamps to the carrier.
        assert_eq!(Prob(0.25).checked_sub(&Prob(0.5)), Some(Prob::zero()));
        const { assert!(Prob::HAS_ADDITIVE_INVERSE) };
        // Max-product has no additive inverse: max is idempotent.
        const { assert!(!MaxProd::HAS_ADDITIVE_INVERSE) };
        assert_eq!(MaxProd(0.5).checked_sub(&MaxProd(0.2)), None);
    }

    #[test]
    #[should_panic(expected = "Prob requires")]
    fn prob_rejects_negative() {
        let _ = Prob::new(-0.5);
    }

    #[test]
    fn maxprod_is_idempotent_additively() {
        let v = MaxProd(0.7);
        assert_eq!(v.add(&v), v);
        assert_eq!(v.add(&MaxProd(0.2)), v);
    }

    #[test]
    fn maxprod_mul() {
        assert!(MaxProd(0.5).mul(&MaxProd(0.5)).approx_eq(&MaxProd(0.25)));
    }

    #[test]
    fn approx_eq_tolerates_rounding() {
        let a = Prob(0.1 + 0.2);
        let b = Prob(0.3);
        assert!(a.approx_eq(&b));
        assert_ne!(a, b); // exact equality fails, approx passes
    }
}
