//! Per-variable aggregate operators for *general* FAQ queries.
//!
//! Equation (4) of the paper allows every bound variable `i > ℓ` its own
//! binary operator `⊕⁽ⁱ⁾`, which must either equal the product `⊗` or form
//! a commutative semiring `(D, ⊕⁽ⁱ⁾, ⊗)` sharing identities `0`/`1` with
//! the base semiring. [`Aggregate`] describes that choice.

use crate::traits::{LatticeOps, Semiring};

/// The aggregate operator attached to a bound variable of a general FAQ.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Aggregate {
    /// The base semiring's `⊕` (the FAQ-SS case when used everywhere).
    #[default]
    Sum,
    /// The product aggregate `⊕⁽ⁱ⁾ = ⊗`.
    Product,
    /// Binary maximum — legal when `(D, max, ⊗)` shares identities with
    /// the base semiring ([`LatticeOps::max_forms_semiring`]).
    Max,
    /// Binary minimum — legal when `(D, min, ⊗)` shares identities.
    Min,
}

/// Error returned when an aggregate is not a legal semiring aggregate for
/// the chosen carrier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggregateError {
    /// The offending aggregate.
    pub aggregate: Aggregate,
    /// The semiring's `NAME`.
    pub semiring: &'static str,
}

impl std::fmt::Display for AggregateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "aggregate {:?} does not form a commutative semiring with shared identities over {}",
            self.aggregate, self.semiring
        )
    }
}

impl std::error::Error for AggregateError {}

impl Aggregate {
    /// Applies the aggregate to two values of a lattice-capable semiring.
    #[must_use]
    pub fn apply<S: LatticeOps>(self, a: &S, b: &S) -> S {
        match self {
            Aggregate::Sum => a.add(b),
            Aggregate::Product => a.mul(b),
            Aggregate::Max => a.join(b),
            Aggregate::Min => a.meet(b),
        }
    }

    /// Applies the aggregate when only plain [`Semiring`] structure is
    /// available; `Max`/`Min` are rejected at runtime.
    pub fn apply_semiring<S: Semiring>(self, a: &S, b: &S) -> Result<S, AggregateError> {
        match self {
            Aggregate::Sum => Ok(a.add(b)),
            Aggregate::Product => Ok(a.mul(b)),
            Aggregate::Max | Aggregate::Min => Err(AggregateError {
                aggregate: self,
                semiring: S::NAME,
            }),
        }
    }

    /// Validates the aggregate against the carrier per the paper's
    /// requirement that each `⊕⁽ⁱ⁾ ≠ ⊗` form a semiring with shared
    /// identities.
    pub fn validate<S: LatticeOps>(self) -> Result<(), AggregateError> {
        let ok = match self {
            Aggregate::Sum | Aggregate::Product => true,
            Aggregate::Max => S::max_forms_semiring(),
            Aggregate::Min => S::min_forms_semiring(),
        };
        if ok {
            Ok(())
        } else {
            Err(AggregateError {
                aggregate: self,
                semiring: S::NAME,
            })
        }
    }

    /// Whether this aggregate is a semiring aggregate (as opposed to the
    /// product aggregate). The distributed push-down rule (Corollary G.2)
    /// treats both uniformly, but the centralized engine orders semiring
    /// aggregates after product aggregates within a bag.
    #[must_use]
    pub fn is_semiring_aggregate(self) -> bool {
        !matches!(self, Aggregate::Product)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Boolean, Count, Prob};

    #[test]
    fn apply_dispatches() {
        let a = Count(3);
        let b = Count(5);
        assert_eq!(Aggregate::Sum.apply(&a, &b), Count(8));
        assert_eq!(Aggregate::Product.apply(&a, &b), Count(15));
        assert_eq!(Aggregate::Max.apply(&a, &b), Count(5));
        assert_eq!(Aggregate::Min.apply(&a, &b), Count(3));
    }

    #[test]
    fn validate_respects_carrier() {
        assert!(Aggregate::Max.validate::<Prob>().is_ok());
        assert!(Aggregate::Min.validate::<Prob>().is_err());
        assert!(Aggregate::Max.validate::<Boolean>().is_ok());
        assert!(Aggregate::Sum.validate::<Count>().is_ok());
    }

    #[test]
    fn apply_semiring_rejects_lattice_ops() {
        let err = Aggregate::Max
            .apply_semiring(&Count(1), &Count(2))
            .unwrap_err();
        assert_eq!(err.aggregate, Aggregate::Max);
        assert!(err.to_string().contains("counting"));
    }

    #[test]
    fn default_is_sum() {
        assert_eq!(Aggregate::default(), Aggregate::Sum);
        assert!(Aggregate::Sum.is_semiring_aggregate());
        assert!(!Aggregate::Product.is_semiring_aggregate());
    }
}
