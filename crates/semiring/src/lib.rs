//! Commutative semiring abstractions for Functional Aggregate Queries (FAQs).
//!
//! The FAQ problem of Abo Khamis, Ngo and Rudra (PODS 2016) — and the
//! distributed round-complexity bounds of Langberg, Li, Mani Jayaraman and
//! Rudra (PODS 2019) reproduced by this workspace — are *semiring agnostic*:
//! every algorithm is parameterised by a commutative semiring `(D, ⊕, ⊗)`
//! with additive identity `0` and multiplicative identity `1`, where `⊗`
//! distributes over `⊕` and `0` is absorbing.
//!
//! This crate provides:
//!
//! * the [`Semiring`] trait (the paper's footnote 2 definition),
//! * concrete instances: the Boolean semiring ([`Boolean`], used for BCQ),
//!   the counting semiring ([`Count`], `#CQ`), the probability semiring
//!   ([`Prob`], PGM marginals), tropical semirings ([`MinPlus`], [`MaxPlus`],
//!   shortest paths / MAP), the max-product Viterbi semiring ([`MaxProd`]),
//!   and the two-element field ([`Gf2`], used by the matrix-chain problem of
//!   Section 6),
//! * the [`Aggregate`] operator descriptor for *general* FAQ queries, where
//!   each bound variable may carry its own aggregate (`⊕`, `⊗`, `max`, or
//!   `min`) as long as it forms a semiring with the shared identities
//!   (Section 5 / Appendix G of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod boolean;
mod counting;
mod gf2;
mod prob;
mod traits;
mod tropical;

pub use aggregate::{Aggregate, AggregateError};
pub use boolean::Boolean;
pub use counting::Count;
pub use gf2::Gf2;
pub use prob::{MaxProd, Prob};
pub use traits::{LatticeOps, Ring, Semiring};
pub use tropical::{MaxPlus, MinPlus};

#[cfg(test)]
mod law_tests;
