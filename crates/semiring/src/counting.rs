//! The counting semiring `(ℕ, +, ×)`.

use crate::traits::{LatticeOps, Semiring};

/// The counting semiring `(ℕ, +, ×)` over `u64` with wrapping-checked
/// arithmetic (saturating, since FAQ counts can legitimately overflow on
/// adversarial inputs and the round-complexity experiments only need
/// correct *relative* results).
///
/// Instantiating FAQ-SS with [`Count`] and `F = ∅` computes the number of
/// join results (`#CQ`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Count(pub u64);

impl Count {
    /// Returns the inner counter.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl From<u64> for Count {
    fn from(v: u64) -> Self {
        Count(v)
    }
}

impl Semiring for Count {
    const NAME: &'static str = "counting";
    // ℕ is not a group, but cancellation `a + b - b = a` is exact whenever
    // no intermediate addition saturated; `checked_sub` refuses to go
    // negative, so delta maintenance falls back to recompute instead of
    // producing a wrapped count.
    const HAS_ADDITIVE_INVERSE: bool = true;

    #[inline]
    fn checked_sub(&self, other: &Self) -> Option<Self> {
        self.0.checked_sub(other.0).map(Count)
    }

    #[inline]
    fn zero() -> Self {
        Count(0)
    }

    #[inline]
    fn one() -> Self {
        Count(1)
    }

    #[inline]
    fn add(&self, other: &Self) -> Self {
        Count(self.0.saturating_add(other.0))
    }

    #[inline]
    fn mul(&self, other: &Self) -> Self {
        Count(self.0.saturating_mul(other.0))
    }

    #[inline]
    fn is_zero(&self) -> bool {
        self.0 == 0
    }

    const WIRE_VALUE_BYTES: usize = 8;

    #[inline]
    fn write_wire(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }

    #[inline]
    fn read_wire(bytes: &[u8]) -> Self {
        Count(u64::from_le_bytes(bytes.try_into().expect("8-byte value")))
    }
}

impl LatticeOps for Count {
    #[inline]
    fn join(&self, other: &Self) -> Self {
        Count(self.0.max(other.0))
    }

    #[inline]
    fn meet(&self, other: &Self) -> Self {
        Count(self.0.min(other.0))
    }

    fn max_forms_semiring() -> bool {
        // (ℕ, max, ×): identity of max is 0, a·max(b,c) = max(ab,ac). ✓
        true
    }

    fn min_forms_semiring() -> bool {
        // min has no identity on ℕ (would need +∞).
        false
    }
}

// `Count` deliberately does not implement `Ring`: ℕ has no additive
// inverses. `Gf2` is the ring/field used by the matrix-chain substrate.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(Count::zero().get(), 0);
        assert_eq!(Count::one().get(), 1);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Count(3).add(&Count(4)), Count(7));
        assert_eq!(Count(3).mul(&Count(4)), Count(12));
        assert_eq!(Count(3).mul(&Count::zero()), Count(0));
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let big = Count(u64::MAX);
        assert_eq!(big.add(&Count(1)), big);
        assert_eq!(big.mul(&Count(2)), big);
    }

    #[test]
    fn checked_sub_cancels_or_refuses() {
        assert_eq!(Count(7).checked_sub(&Count(4)), Some(Count(3)));
        assert_eq!(Count(4).checked_sub(&Count(4)), Some(Count::zero()));
        assert_eq!(Count(3).checked_sub(&Count(4)), None);
        const { assert!(Count::HAS_ADDITIVE_INVERSE) };
    }

    #[test]
    fn lattice_ops() {
        assert_eq!(Count(3).join(&Count(4)), Count(4));
        assert_eq!(Count(3).meet(&Count(4)), Count(3));
        assert!(Count::max_forms_semiring());
        assert!(!Count::min_forms_semiring());
    }
}
