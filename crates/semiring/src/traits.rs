//! The core algebraic traits.

use std::fmt::Debug;

/// A commutative semiring `(D, ⊕, ⊗)` in the sense of the paper's
/// footnote 2:
///
/// 1. `(D, ⊕)` is a commutative monoid with identity [`Semiring::zero`];
/// 2. `(D, ⊗)` is a commutative monoid with identity [`Semiring::one`];
/// 3. `⊗` distributes over `⊕`;
/// 4. `0 ⊗ d = d ⊗ 0 = 0` for every `d ∈ D` (zero is absorbing).
///
/// Values are stored inside relations in *listing representation*: only
/// entries whose value is not [`Semiring::zero`] are materialised, exactly
/// as the paper assumes for the input functions `f_e`.
///
/// Implementations must satisfy the semiring laws; the crate's property
/// tests check them on every provided instance.
pub trait Semiring: Clone + PartialEq + Debug + Send + Sync + 'static {
    /// A short human-readable name, used by the benchmark harness when
    /// printing per-semiring experiment rows.
    const NAME: &'static str;

    /// Whether `⊗` is idempotent (`d ⊗ d = d`). Idempotence makes the
    /// *product aggregate* of general FAQs commute with semiring
    /// aggregates across factorised subexpressions (the multiplicity
    /// blow-up `f^m` collapses to `f`), which is what the engine's
    /// push-down rewriting needs; see `faqs-core` for the discussion.
    const IDEMPOTENT_MUL: bool = false;

    /// Whether [`Semiring::checked_sub`] can cancel `⊕`-contributions —
    /// the capability gate for *delta-maintained* FAQ answers: when it
    /// holds, a factor mutation propagates up the GHD as a pair of
    /// small signed delta relations instead of a subtree recompute.
    ///
    /// This is deliberately weaker than [`Ring`]: `Count` has no
    /// additive inverses on ℕ, yet `a ⊕ b ⊖ b = a` holds whenever the
    /// subtraction stays in the carrier, which is all delta maintenance
    /// needs (a failed cancellation falls back to recompute).
    const HAS_ADDITIVE_INVERSE: bool = false;

    /// Partial cancellation `self ⊖ other`: a value `d` with
    /// `d ⊕ other = self` when the carrier can represent one, `None`
    /// otherwise (the caller must then recompute from scratch). The
    /// default refuses always — only semirings declaring
    /// [`Semiring::HAS_ADDITIVE_INVERSE`] override it.
    #[must_use]
    fn checked_sub(&self, other: &Self) -> Option<Self> {
        let _ = other;
        None
    }

    /// The additive identity `0` (also the absorbing element of `⊗`).
    fn zero() -> Self;

    /// The multiplicative identity `1`.
    fn one() -> Self;

    /// The semiring addition `⊕`.
    #[must_use]
    fn add(&self, other: &Self) -> Self;

    /// The semiring multiplication `⊗`.
    #[must_use]
    fn mul(&self, other: &Self) -> Self;

    /// Whether this value equals the additive identity.
    ///
    /// Relations drop zero-valued entries eagerly, mirroring the listing
    /// representation `R_e = {(y, f_e(y)) : f_e(y) ≠ 0}`.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// In-place `⊕`-accumulation; override when cheaper than `add`.
    fn add_assign(&mut self, other: &Self) {
        *self = self.add(other);
    }

    /// In-place `⊗`-accumulation; override when cheaper than `mul`.
    fn mul_assign(&mut self, other: &Self) {
        *self = self.mul(other);
    }

    /// `⊕`-sum of an iterator of values (`0` on empty input).
    fn sum<I: IntoIterator<Item = Self>>(iter: I) -> Self {
        let mut acc = Self::zero();
        for v in iter {
            acc.add_assign(&v);
        }
        acc
    }

    /// `⊗`-product of an iterator of values (`1` on empty input).
    fn product<I: IntoIterator<Item = Self>>(iter: I) -> Self {
        let mut acc = Self::one();
        for v in iter {
            acc.mul_assign(&v);
        }
        acc
    }

    /// The number of bits needed to communicate one value of this semiring
    /// in the distributed model (Model 2.1 charges `O(r·log₂ D)` bits per
    /// tuple; the value annotation contributes these extra bits for
    /// non-Boolean semirings).
    fn value_bits() -> u64 {
        64
    }

    /// Approximate equality, used by tests on inexact carriers such as
    /// [`crate::Prob`]. Exact by default.
    fn approx_eq(&self, other: &Self) -> bool {
        self == other
    }

    /// Exact byte width of one annotation value in the columnar wire
    /// codec's fixed-width value section (`faqs-relation`'s shard
    /// frames). `0` means the value is implied by presence — listing
    /// representation stores only non-zero entries, so zero-width
    /// carriers (Boolean, GF(2)) decode every row to [`Semiring::one`].
    ///
    /// This is the *wire* width, distinct from [`Semiring::value_bits`]:
    /// the latter prices Model 2.1 communication, the former is the
    /// exact number of bytes a real transport moves.
    const WIRE_VALUE_BYTES: usize = 8;

    /// Appends exactly [`Semiring::WIRE_VALUE_BYTES`] bytes encoding
    /// this value to `out`. Never called when the width is `0`.
    ///
    /// The default panics: semirings shipped across a real transport
    /// must override it (all in-workspace carriers do).
    fn write_wire(&self, out: &mut Vec<u8>) {
        let _ = out;
        unimplemented!("semiring {} has no wire codec", Self::NAME)
    }

    /// Decodes one value from exactly [`Semiring::WIRE_VALUE_BYTES`]
    /// bytes. Inverse of [`Semiring::write_wire`]; never called when
    /// the width is `0`.
    fn read_wire(bytes: &[u8]) -> Self {
        let _ = bytes;
        unimplemented!("semiring {} has no wire codec", Self::NAME)
    }
}

/// Extra lattice structure available on ordered semirings.
///
/// General FAQ queries (Section 5) allow each bound variable its own
/// aggregate `⊕⁽ⁱ⁾` as long as `(D, ⊕⁽ⁱ⁾, ⊗)` is a commutative semiring
/// sharing the identities `0`/`1`. For numeric carriers, `max` (and
/// sometimes `min`) are such aggregates; this trait exposes them.
pub trait LatticeOps: Semiring {
    /// Binary maximum (lattice join); must distribute with `⊗` on the carrier.
    #[must_use]
    fn join(&self, other: &Self) -> Self;

    /// Binary minimum (lattice meet).
    #[must_use]
    fn meet(&self, other: &Self) -> Self;

    /// Whether `(D, max, ⊗)` is a commutative semiring with the same
    /// identities as `(D, ⊕, ⊗)` — i.e. whether `max` is a legal semiring
    /// aggregate for a bound variable in a general FAQ.
    fn max_forms_semiring() -> bool;

    /// Whether `(D, min, ⊗)` shares identities with `(D, ⊕, ⊗)`.
    fn min_forms_semiring() -> bool;
}

/// A commutative ring: a semiring with additive inverses.
///
/// Used by the matrix-chain-multiplication substrate (Section 6), which
/// works over the two-element field `F₂`.
pub trait Ring: Semiring {
    /// The additive inverse `-self`.
    #[must_use]
    fn neg(&self) -> Self;

    /// Subtraction `self ⊕ (-other)`.
    #[must_use]
    fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }
}
