//! Property tests: every exported instance satisfies the commutative
//! semiring laws of footnote 2 of the paper.

use crate::*;
use proptest::prelude::*;

/// Checks all semiring laws on a triple of values.
fn check_laws<S: Semiring>(a: S, b: S, c: S) {
    // (D, ⊕) commutative monoid with identity 0.
    assert!(a.add(&b).approx_eq(&b.add(&a)), "⊕ commutes");
    assert!(
        a.add(&b).add(&c).approx_eq(&a.add(&b.add(&c))),
        "⊕ associates"
    );
    assert!(a.add(&S::zero()).approx_eq(&a), "0 is ⊕-identity");

    // (D, ⊗) commutative monoid with identity 1.
    assert!(a.mul(&b).approx_eq(&b.mul(&a)), "⊗ commutes");
    assert!(
        a.mul(&b).mul(&c).approx_eq(&a.mul(&b.mul(&c))),
        "⊗ associates"
    );
    assert!(a.mul(&S::one()).approx_eq(&a), "1 is ⊗-identity");

    // ⊗ distributes over ⊕.
    assert!(
        a.mul(&b.add(&c)).approx_eq(&a.mul(&b).add(&a.mul(&c))),
        "⊗ distributes over ⊕"
    );

    // 0 is absorbing.
    assert!(a.mul(&S::zero()).is_zero(), "0 absorbs under ⊗");
}

proptest! {
    #[test]
    fn boolean_laws(a: bool, b: bool, c: bool) {
        check_laws(Boolean(a), Boolean(b), Boolean(c));
    }

    #[test]
    fn counting_laws(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
        check_laws(Count(a), Count(b), Count(c));
    }

    #[test]
    fn prob_laws(a in 0.0f64..1e6, b in 0.0f64..1e6, c in 0.0f64..1e6) {
        check_laws(Prob(a), Prob(b), Prob(c));
    }

    #[test]
    fn maxprod_laws(a in 0.0f64..1e6, b in 0.0f64..1e6, c in 0.0f64..1e6) {
        check_laws(MaxProd(a), MaxProd(b), MaxProd(c));
    }

    #[test]
    fn minplus_laws(a in -1e6f64..1e6, b in -1e6f64..1e6, c in -1e6f64..1e6) {
        check_laws(MinPlus(a), MinPlus(b), MinPlus(c));
    }

    #[test]
    fn maxplus_laws(a in -1e6f64..1e6, b in -1e6f64..1e6, c in -1e6f64..1e6) {
        check_laws(MaxPlus(a), MaxPlus(b), MaxPlus(c));
    }

    #[test]
    fn gf2_laws(a: bool, b: bool, c: bool) {
        check_laws(Gf2(a), Gf2(b), Gf2(c));
    }

    #[test]
    fn gf2_field_laws(a: bool, b: bool) {
        let (a, b) = (Gf2(a), Gf2(b));
        // additive inverse
        prop_assert_eq!(a.add(&a.neg()), Gf2::zero());
        // multiplicative inverse for non-zero
        if !a.is_zero() {
            prop_assert_eq!(a.mul(&a.inverse().unwrap()), Gf2::one());
        }
        // subtraction consistency
        prop_assert_eq!(a.sub(&b).add(&b), a);
    }

    #[test]
    fn max_aggregate_distributes_on_prob(a in 0.0f64..1e3, b in 0.0f64..1e3, c in 0.0f64..1e3) {
        // a ⊗ max(b,c) == max(a⊗b, a⊗c): the condition that makes Max a
        // legal semiring aggregate on ℝ≥0 (Section 5's requirement).
        let (a, b, c) = (Prob(a), Prob(b), Prob(c));
        let lhs = a.mul(&Aggregate::Max.apply(&b, &c));
        let rhs = Aggregate::Max.apply(&a.mul(&b), &a.mul(&c));
        prop_assert!(lhs.approx_eq(&rhs));
    }

    #[test]
    fn max_aggregate_distributes_on_count(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000) {
        let (a, b, c) = (Count(a), Count(b), Count(c));
        let lhs = a.mul(&Aggregate::Max.apply(&b, &c));
        let rhs = Aggregate::Max.apply(&a.mul(&b), &a.mul(&c));
        prop_assert_eq!(lhs, rhs);
    }
}
