//! The two-element field `F₂`.

use crate::traits::{Ring, Semiring};

/// The field `F₂ = ({0,1}, ⊕ = XOR, ⊗ = AND)`.
///
/// This is the carrier of the chain matrix-vector multiplication problem
/// (Problem 1.1 / Section 6 of the paper): computing `A_k ⋯ A_1 x` over
/// `F₂` on a line topology. The bit-packed matrix types in `faqs-mcm`
/// operate on 64 of these at a time; this scalar type exists so the
/// generic FAQ machinery can also run over `F₂` and so tests can state
/// field laws directly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Gf2(pub bool);

impl Gf2 {
    /// Constructs from the low bit of `v`.
    #[inline]
    pub fn from_bit(v: u64) -> Self {
        Gf2(v & 1 == 1)
    }

    /// Returns the value as `0` or `1`.
    #[inline]
    pub fn bit(self) -> u64 {
        self.0 as u64
    }

    /// The multiplicative inverse; `None` for zero.
    #[inline]
    pub fn inverse(self) -> Option<Self> {
        self.0.then_some(Gf2(true))
    }
}

impl Semiring for Gf2 {
    const NAME: &'static str = "gf2";
    const IDEMPOTENT_MUL: bool = true;
    // Characteristic 2: subtraction is addition, always exact.
    const HAS_ADDITIVE_INVERSE: bool = true;

    #[inline]
    fn checked_sub(&self, other: &Self) -> Option<Self> {
        Some(self.add(other))
    }

    #[inline]
    fn zero() -> Self {
        Gf2(false)
    }

    #[inline]
    fn one() -> Self {
        Gf2(true)
    }

    #[inline]
    fn add(&self, other: &Self) -> Self {
        Gf2(self.0 ^ other.0)
    }

    #[inline]
    fn mul(&self, other: &Self) -> Self {
        Gf2(self.0 & other.0)
    }

    #[inline]
    fn is_zero(&self) -> bool {
        !self.0
    }

    #[inline]
    fn value_bits() -> u64 {
        1
    }

    // Listing representation stores only the non-zero field element, so
    // the wire carries presence alone and decode refills `one()`.
    const WIRE_VALUE_BYTES: usize = 0;
}

impl Ring for Gf2 {
    #[inline]
    fn neg(&self) -> Self {
        *self // characteristic 2: −x = x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_tables() {
        let z = Gf2::zero();
        let o = Gf2::one();
        assert_eq!(o.add(&o), z); // 1+1 = 0 mod 2
        assert_eq!(o.add(&z), o);
        assert_eq!(o.mul(&o), o);
        assert_eq!(o.mul(&z), z);
    }

    #[test]
    fn additive_inverse_is_self() {
        for v in [Gf2::zero(), Gf2::one()] {
            assert_eq!(v.add(&v.neg()), Gf2::zero());
            assert_eq!(v.sub(&v), Gf2::zero());
        }
    }

    #[test]
    fn checked_sub_is_xor() {
        assert_eq!(Gf2::one().checked_sub(&Gf2::one()), Some(Gf2::zero()));
        assert_eq!(Gf2::zero().checked_sub(&Gf2::one()), Some(Gf2::one()));
        const { assert!(Gf2::HAS_ADDITIVE_INVERSE) };
    }

    #[test]
    fn inverses() {
        assert_eq!(Gf2::one().inverse(), Some(Gf2::one()));
        assert_eq!(Gf2::zero().inverse(), None);
    }

    #[test]
    fn bit_roundtrip() {
        assert_eq!(Gf2::from_bit(3).bit(), 1);
        assert_eq!(Gf2::from_bit(2).bit(), 0);
    }
}
