//! Tropical semirings: min-plus and max-plus.

use crate::traits::Semiring;

/// The min-plus (tropical) semiring `(ℝ ∪ {+∞}, min, +)`.
///
/// FAQ-SS over [`MinPlus`] computes shortest-path style objectives
/// (minimum total cost over all joint assignments), another member of the
/// generalized-distributive-law family the paper situates itself in.
#[derive(Clone, Copy, PartialEq, Debug, PartialOrd)]
pub struct MinPlus(pub f64);

impl MinPlus {
    /// The additive identity `+∞`.
    pub const INFINITY: MinPlus = MinPlus(f64::INFINITY);

    /// Creates a finite cost value.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "MinPlus rejects NaN");
        MinPlus(v)
    }

    /// Returns the inner float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Default for MinPlus {
    fn default() -> Self {
        Self::INFINITY
    }
}

impl Semiring for MinPlus {
    const NAME: &'static str = "min-plus";

    #[inline]
    fn zero() -> Self {
        MinPlus(f64::INFINITY)
    }

    #[inline]
    fn one() -> Self {
        MinPlus(0.0)
    }

    #[inline]
    fn add(&self, other: &Self) -> Self {
        MinPlus(self.0.min(other.0))
    }

    #[inline]
    fn mul(&self, other: &Self) -> Self {
        MinPlus(self.0 + other.0)
    }

    #[inline]
    fn is_zero(&self) -> bool {
        self.0 == f64::INFINITY
    }

    fn approx_eq(&self, other: &Self) -> bool {
        if self.0 == other.0 {
            return true; // covers the two infinities
        }
        let scale = self.0.abs().max(other.0.abs()).max(1.0);
        (self.0 - other.0).abs() <= 1e-9 * scale
    }

    // IEEE-754 bit pattern, little-endian: the round trip is exact.
    #[inline]
    fn write_wire(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }

    #[inline]
    fn read_wire(bytes: &[u8]) -> Self {
        MinPlus(f64::from_le_bytes(bytes.try_into().expect("8-byte value")))
    }
}

/// The max-plus semiring `(ℝ ∪ {−∞}, max, +)`.
///
/// The log-domain twin of the Viterbi semiring: FAQ-SS over [`MaxPlus`]
/// computes maximum log-likelihood assignments.
#[derive(Clone, Copy, PartialEq, Debug, PartialOrd)]
pub struct MaxPlus(pub f64);

impl MaxPlus {
    /// The additive identity `−∞`.
    pub const NEG_INFINITY: MaxPlus = MaxPlus(f64::NEG_INFINITY);

    /// Creates a finite score value.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "MaxPlus rejects NaN");
        MaxPlus(v)
    }

    /// Returns the inner float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Default for MaxPlus {
    fn default() -> Self {
        Self::NEG_INFINITY
    }
}

impl Semiring for MaxPlus {
    const NAME: &'static str = "max-plus";

    #[inline]
    fn zero() -> Self {
        MaxPlus(f64::NEG_INFINITY)
    }

    #[inline]
    fn one() -> Self {
        MaxPlus(0.0)
    }

    #[inline]
    fn add(&self, other: &Self) -> Self {
        MaxPlus(self.0.max(other.0))
    }

    #[inline]
    fn mul(&self, other: &Self) -> Self {
        MaxPlus(self.0 + other.0)
    }

    #[inline]
    fn is_zero(&self) -> bool {
        self.0 == f64::NEG_INFINITY
    }

    fn approx_eq(&self, other: &Self) -> bool {
        if self.0 == other.0 {
            return true;
        }
        let scale = self.0.abs().max(other.0.abs()).max(1.0);
        (self.0 - other.0).abs() <= 1e-9 * scale
    }

    #[inline]
    fn write_wire(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }

    #[inline]
    fn read_wire(bytes: &[u8]) -> Self {
        MaxPlus(f64::from_le_bytes(bytes.try_into().expect("8-byte value")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minplus_identities() {
        assert!(MinPlus::zero().is_zero());
        assert_eq!(MinPlus::one().get(), 0.0);
        // 0 is absorbing: min-plus "multiplication" with +∞ yields +∞.
        assert!(MinPlus(3.0).mul(&MinPlus::zero()).is_zero());
    }

    #[test]
    fn minplus_behaviour() {
        assert_eq!(MinPlus(3.0).add(&MinPlus(5.0)), MinPlus(3.0));
        assert_eq!(MinPlus(3.0).mul(&MinPlus(5.0)), MinPlus(8.0));
    }

    #[test]
    fn maxplus_identities() {
        assert!(MaxPlus::zero().is_zero());
        assert_eq!(MaxPlus::one().get(), 0.0);
        assert!(MaxPlus(3.0).mul(&MaxPlus::zero()).is_zero());
    }

    #[test]
    fn maxplus_behaviour() {
        assert_eq!(MaxPlus(3.0).add(&MaxPlus(5.0)), MaxPlus(5.0));
        assert_eq!(MaxPlus(3.0).mul(&MaxPlus(5.0)), MaxPlus(8.0));
    }

    #[test]
    #[should_panic(expected = "rejects NaN")]
    fn minplus_rejects_nan() {
        let _ = MinPlus::new(f64::NAN);
    }
}
