//! The Boolean semiring `({0,1}, ∨, ∧)`.

use crate::traits::{LatticeOps, Semiring};

/// The Boolean semiring `({0,1}, ∨, ∧)`.
///
/// With an empty set of free variables this is exactly the **Boolean
/// Conjunctive Query** (BCQ) instantiation of FAQ-SS from Section 1 of the
/// paper; with all variables free it is the natural join.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Boolean(pub bool);

impl Boolean {
    /// The truthy value `1`.
    pub const TRUE: Boolean = Boolean(true);
    /// The falsy value `0`.
    pub const FALSE: Boolean = Boolean(false);

    /// Returns the inner `bool`.
    #[inline]
    pub fn get(self) -> bool {
        self.0
    }
}

impl From<bool> for Boolean {
    fn from(b: bool) -> Self {
        Boolean(b)
    }
}

impl Semiring for Boolean {
    const NAME: &'static str = "boolean";
    const IDEMPOTENT_MUL: bool = true;

    #[inline]
    fn zero() -> Self {
        Boolean(false)
    }

    #[inline]
    fn one() -> Self {
        Boolean(true)
    }

    #[inline]
    fn add(&self, other: &Self) -> Self {
        Boolean(self.0 || other.0)
    }

    #[inline]
    fn mul(&self, other: &Self) -> Self {
        Boolean(self.0 && other.0)
    }

    #[inline]
    fn is_zero(&self) -> bool {
        !self.0
    }

    #[inline]
    fn value_bits() -> u64 {
        // A Boolean annotation carries no information beyond tuple
        // presence (the listing representation stores only `1` values).
        0
    }

    // Presence-only on the wire too: every stored annotation is `true`.
    const WIRE_VALUE_BYTES: usize = 0;
}

impl LatticeOps for Boolean {
    #[inline]
    fn join(&self, other: &Self) -> Self {
        Boolean(self.0 || other.0)
    }

    #[inline]
    fn meet(&self, other: &Self) -> Self {
        Boolean(self.0 && other.0)
    }

    fn max_forms_semiring() -> bool {
        true // max == ∨ == ⊕
    }

    fn min_forms_semiring() -> bool {
        // (D, ∧, ∧) does not have distinct identities 0/1; `min` is the
        // product aggregate here, not an alternative semiring aggregate.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(Boolean::zero(), Boolean::FALSE);
        assert_eq!(Boolean::one(), Boolean::TRUE);
        assert!(Boolean::zero().is_zero());
        assert!(!Boolean::one().is_zero());
    }

    #[test]
    fn truth_table() {
        let t = Boolean::TRUE;
        let f = Boolean::FALSE;
        assert_eq!(t.add(&f), t);
        assert_eq!(f.add(&f), f);
        assert_eq!(t.mul(&f), f);
        assert_eq!(t.mul(&t), t);
    }

    #[test]
    fn sum_and_product_fold() {
        let vals = vec![Boolean::FALSE, Boolean::TRUE, Boolean::FALSE];
        assert_eq!(Boolean::sum(vals.clone()), Boolean::TRUE);
        assert_eq!(Boolean::product(vals), Boolean::FALSE);
        assert_eq!(Boolean::sum(std::iter::empty()), Boolean::FALSE);
        assert_eq!(Boolean::product(std::iter::empty()), Boolean::TRUE);
    }

    #[test]
    fn zero_value_bits() {
        assert_eq!(Boolean::value_bits(), 0);
    }
}
