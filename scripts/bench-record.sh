#!/usr/bin/env bash
# Converts a vendored-criterion bench transcript (mean/min/max rows)
# into a BENCH_<name>.json perf-trajectory record under bench-records/.
#
# Usage: scripts/bench-record.sh <bench-name> <transcript.txt>
set -euo pipefail

bench="$1"
txt="$2"
mkdir -p bench-records
out="bench-records/BENCH_${bench}.json"
{
  echo '{'
  echo "  \"commit\": \"${GITHUB_SHA:-local}\","
  echo "  \"bench\": \"${bench}\","
  echo '  "mode": "quick",'
  echo '  "results": {'
  awk '/ mean /{printf "%s    \"%s\": { \"mean\": \"%s %s\", \"min\": \"%s %s\", \"max\": \"%s %s\" }", sep, $1, $3, $4, $6, $7, $9, $10; sep=",\n"} END {print ""}' "$txt"
  echo '  }'
  echo '}'
} > "$out"
cat "$out"
