//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API subset the workspace's benches use — [`Criterion`],
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a deliberately simple measurement
//! loop: warm-up, then `sample_size` timed batches, reporting
//! mean / min / max ns per iteration to stdout. No statistical analysis,
//! no HTML reports, no comparison to saved baselines.
//!
//! `cargo bench` therefore still produces useful relative numbers, and
//! `cargo bench --no-run` exercises exactly the same target wiring the
//! real criterion would.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    result: Option<Stats>,
}

#[derive(Clone, Copy, Debug)]
struct Stats {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, batching iterations so each sample lasts long
    /// enough for the monotonic clock to resolve it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, growing the
        // batch size so the loop overhead stays negligible.
        let mut batch: u64 = 1;
        let warm_deadline = Instant::now() + self.warm_up;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if Instant::now() >= warm_deadline {
                // Aim each measured sample at measurement/samples wall time.
                let per_iter = dt.as_secs_f64() / batch as f64;
                let target = self.measurement.as_secs_f64() / self.samples as f64;
                batch = ((target / per_iter.max(1e-9)).ceil() as u64).max(1);
                break;
            }
            batch = batch.saturating_mul(2);
        }

        let mut total_iters = 0u64;
        let mut sum_ns = 0.0f64;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            sum_ns += ns * batch as f64;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
            total_iters += batch;
        }
        self.result = Some(Stats {
            mean_ns: sum_ns / total_iters as f64,
            min_ns,
            max_ns,
            iters: total_iters,
        });
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for warming up each benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Wall-clock budget for measuring each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark. Like real criterion, a CLI filter skips the
    /// measurement entirely, not just the report.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if !self.criterion.matches(&full_id(&self.name, &id)) {
            return self;
        }
        // `--quick` clamps whatever the group configured, so CI smoke
        // runs stay fast even for groups that raise the budgets.
        let (samples, warm_up, measurement) = if self.criterion.quick {
            (
                self.sample_size.min(3),
                self.warm_up.min(Duration::from_millis(50)),
                self.measurement.min(Duration::from_millis(250)),
            )
        } else {
            (self.sample_size, self.warm_up, self.measurement)
        };
        let mut bencher = Bencher {
            samples,
            warm_up,
            measurement,
            result: None,
        };
        f(&mut bencher);
        self.criterion.report(&self.name, &id, bencher.result);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op beyond symmetry with real criterion).
    pub fn finish(&mut self) {}
}

/// The harness entry point; one per bench binary.
pub struct Criterion {
    filter: Option<String>,
    /// `-- --quick` mode: clamp warm-up/measurement budgets so a full
    /// bench target finishes in CI-smoke time (mirrors real criterion's
    /// `--quick` flag).
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` / `--bench <name> -- <filter>`: keep
        // only positional args as a substring filter, like real criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        let quick = std::env::args().skip(1).any(|a| a == "--quick");
        Criterion { filter, quick }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }

    /// Runs a standalone benchmark (group of one).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(id.to_string()).bench_function("", f);
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filter
            .as_ref()
            .is_none_or(|f| full_id.contains(f.as_str()))
    }

    fn report(&self, group: &str, id: &BenchmarkId, stats: Option<Stats>) {
        let full = full_id(group, id);
        match stats {
            Some(s) => println!(
                "{full:<60} mean {:>12} min {:>12} max {:>12} ({} iters)",
                fmt_ns(s.mean_ns),
                fmt_ns(s.min_ns),
                fmt_ns(s.max_ns),
                s.iters
            ),
            None => println!("{full:<60} (no measurement: Bencher::iter never called)"),
        }
    }
}

fn full_id(group: &str, id: &BenchmarkId) -> String {
    if id.id.is_empty() {
        group.to_string()
    } else {
        format!("{group}/{id}")
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group function running each target, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_clamps_budgets() {
        let mut c = Criterion {
            filter: None,
            quick: true,
        };
        let mut group = c.benchmark_group("quick");
        // The group asks for a long run; --quick must clamp it.
        group
            .sample_size(100)
            .measurement_time(Duration::from_secs(60));
        let t0 = std::time::Instant::now();
        group.bench_function("clamped", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "quick run took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            quick: false,
        };
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function("id", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
