//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the subset of `rand` the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`SeedableRng::seed_from_u64`),
//! * the [`Rng`] extension methods `random`, `random_bool`, `random_range`,
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates) and
//!   [`seq::index::sample`] (partial Fisher–Yates without replacement).
//!
//! Everything is deterministic given the seed; there is no OS entropy
//! source. To swap back to the real `rand` once registry access exists,
//! point the root `Cargo.toml`'s `[workspace.dependencies] rand` entry at
//! the registry version and drop `vendor/rand` from both the `members`
//! and `default-members` lists.

#![forbid(unsafe_code)]

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A type that can be produced uniformly at random by [`Rng::random`].
pub trait Standard: Sized {
    /// Samples a uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::random_range`]. Generic over the element
/// type `T` (like the real rand) so the *expected* return type drives
/// integer-literal inference in expressions such as
/// `Count(rng.random_range(1..4))`.
pub trait SampleRange<T> {
    /// Samples a uniform element of the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2^64, negligible for test-scale spans.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        <f64 as Standard>::sample(self) < p
    }

    /// Samples a uniform element of `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Vigna): decorrelates consecutive integer seeds.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stand-in for `rand`'s
    /// `StdRng`; not cryptographically secure, which no caller here needs).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.
    use super::{Rng, RngCore};

    /// Slice extensions, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }

    pub mod index {
        //! Index sampling without replacement.
        use super::super::{Rng, RngCore};

        /// The result of [`sample`]: distinct indices in `0..length`.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterates over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// The indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` (partial
        /// Fisher–Yates), mirroring `rand::seq::index::sample`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.random_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

/// Returns a fresh, OS-entropy-free generator. The real `rand::rng()` is
/// nondeterministic; this stand-in derives its seed from the current time
/// so independent calls diverge while staying dependency-free.
pub fn rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index::sample, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1usize..=4);
            assert!((1..=4).contains(&y));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let s = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn random_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads={heads}");
    }

    #[test]
    fn sample_yields_distinct_indices() {
        let mut rng = StdRng::seed_from_u64(3);
        let picks = sample(&mut rng, 10, 6);
        let set: std::collections::BTreeSet<usize> = picks.iter().collect();
        assert_eq!(set.len(), 6);
        assert!(set.iter().all(|&i| i < 10));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
