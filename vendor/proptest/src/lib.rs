//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API this workspace uses — the
//! [`Strategy`] trait, range/tuple/`any` strategies, `prop_map`, the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`), and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros — backed by the
//! vendored deterministic [`rand`] crate.
//!
//! Differences from the real proptest, acceptable for this workspace:
//!
//! * **no shrinking** — a failing case reports the panic of the raw input
//!   (each case prints nothing unless it fails, and inputs are derived
//!   deterministically from the test's module path and name, so failures
//!   reproduce exactly on re-run);
//! * `prop_assume!` skips the case rather than resampling, so each test
//!   runs *at most* the configured number of cases;
//! * `prop_assert*` panic immediately instead of collecting a minimal
//!   counterexample.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no intermediate `ValueTree`: a
    /// strategy simply produces a value from a deterministic RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps the generated value through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Filters generated values; sampling retries until `f` accepts
        /// (bounded, then panics — keep predicates loose).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive samples: {}",
                self.whence
            );
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    /// `Just(v)`: always generates a clone of `v`.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! Default strategies per type ([`any`]).
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.random::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.random()
        }
    }
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Finite, sign-symmetric, spanning several orders of magnitude.
            let mag: f64 = rng.random_range(0.0..1e9);
            if rng.random() {
                mag
            } else {
                -mag
            }
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod test_runner {
    //! Per-test configuration.

    /// Mirror of `proptest::test_runner::Config` (the `cases` knob only).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic RNG for one property test, derived from its identity so
/// every `cargo test` run replays the identical case sequence.
pub fn rng_for_test(module: &str, name: &str) -> StdRng {
    // FNV-1a over the fully qualified test name.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in module.bytes().chain("::".bytes()).chain(name.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// Defines property tests. Supports the two real-proptest argument forms
/// (`name: Type` for `any::<Type>()` and `name in strategy`) plus an
/// optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal: expands each `fn` in a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::rng_for_test(module_path!(), stringify!($name));
            for __case in 0..__config.cases {
                $crate::__proptest_bind! { (__rng) (__case) ($body) [] $($args)* }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Internal: parses the argument list of one property-test `fn`,
/// accumulating `(pattern, strategy)` pairs, then runs one case.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    // All arguments parsed: generate each value, run the body once.
    (($rng:ident) ($case:ident) ($body:block) [$(($pat:ident, $strat:expr))*]) => {
        {
            $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);)*
            // The closure gives `prop_assume!`'s early-`return` a place to
            // land, skipping just this case.
            let __one_case = move || { $body };
            __one_case();
        }
    };
    // `name: Type` — any::<Type>().
    (($rng:ident) ($case:ident) ($body:block) [$($acc:tt)*] $n:ident : $t:ty $(, $($rest:tt)*)?) => {
        $crate::__proptest_bind! {
            ($rng) ($case) ($body) [$($acc)* ($n, $crate::arbitrary::any::<$t>())] $($($rest)*)?
        }
    };
    // `name in strategy`.
    (($rng:ident) ($case:ident) ($body:block) [$($acc:tt)*] $n:ident in $e:expr $(, $($rest:tt)*)?) => {
        $crate::__proptest_bind! {
            ($rng) ($case) ($body) [$($acc)* ($n, $e)] $($($rest)*)?
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when the precondition fails (no resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_test_name_same_sequence() {
        let mut a = crate::rng_for_test("m", "t");
        let mut b = crate::rng_for_test("m", "t");
        use rand::Rng;
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 10u32..20, y in -4i64..4, f in 0.5f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-4..4).contains(&y));
            prop_assert!((0.5..0.75).contains(&f));
        }

        #[test]
        fn typed_args_work(b: bool, s: u64) {
            // Consume both to prove move-capture works.
            let _ = (b, s);
        }

        #[test]
        fn mixed_args_and_assume(n in 1usize..6, flag: bool) {
            prop_assume!(flag);
            prop_assert!((1..6).contains(&n));
        }

        #[test]
        fn prop_map_composes(v in (1u32..5, 10u32..14).prop_map(|(a, b)| a + b)) {
            prop_assert!((11..19).contains(&v));
        }
    }
}
