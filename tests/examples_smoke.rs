//! Smoke test: every `examples/` binary builds and runs to completion.
//!
//! Spawns the same `cargo` that is running this test (nested invocations
//! are safe: cargo releases the build lock before executing test
//! binaries), so `cargo test` alone proves all five examples stay
//! runnable.

use std::path::Path;
use std::process::Command;

const EXAMPLES: [&str; 5] = [
    "quickstart",
    "matrix_chain",
    "pgm_inference",
    "sensor_network",
    "topology_bounds",
];

#[test]
fn all_examples_run_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");

    // Guard against the list drifting from the directory contents.
    let mut on_disk: Vec<String> = std::fs::read_dir(Path::new(manifest_dir).join("examples"))
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    let mut expected = EXAMPLES.map(str::to_string).to_vec();
    expected.sort();
    assert_eq!(
        on_disk, expected,
        "examples/ changed on disk; update EXAMPLES in this smoke test"
    );

    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .current_dir(manifest_dir)
            .args(["run", "--quiet", "--package", "faqs", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{example}`: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
