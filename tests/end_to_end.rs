//! End-to-end integration tests spanning every crate: distributed
//! protocols vs. the centralized engine vs. the brute-force oracle, on
//! the paper's worked examples and on adversarial instances produced by
//! the lower-bound reductions.

use faqs::engine::{solve_faq, solve_faq_brute_force};
use faqs::hypergraph::{
    clique_query, cycle_query, example_h0, example_h1, example_h2, example_h3, grid_query,
    path_query, star_query, tree_query,
};
use faqs::lowerbounds::{
    bcq_lower_bound, embed_core, embed_forest, forest_capacity, hard_assignment, mcm_lower_bound,
    Tribes,
};
use faqs::mcm::{merge_protocol, sequential_protocol, trivial_protocol, McmProblem};
use faqs::network::Player;
use faqs::prelude::*;
use faqs::protocols::{run_trivial, BoundReport};
use faqs::relation::{random_boolean_instance, random_instance, RandomInstanceConfig};
use rand::Rng;

fn all_player_ids(g: &Topology) -> Vec<u32> {
    (0..g.num_players() as u32).collect()
}

#[test]
fn protocol_engine_and_oracle_agree_everywhere() {
    let shapes = [
        ("star", star_query(4)),
        ("path", path_query(4)),
        ("cycle", cycle_query(4)),
        ("tree", tree_query(2, 2)),
        ("h0", example_h0()),
        ("h1", example_h1()),
        ("h2", example_h2()),
        ("h3", example_h3()),
        ("clique", clique_query(3)),
        ("grid", grid_query(2, 3)),
    ];
    let topologies = [
        Topology::line(5),
        Topology::clique(5),
        Topology::ring(5),
        Topology::grid(2, 3),
        Topology::binary_tree(5),
    ];
    for (name, h) in shapes {
        for seed in 0..3u64 {
            let cfg = RandomInstanceConfig {
                tuples_per_factor: 5,
                domain: 3,
                seed: seed * 131 + name.len() as u64,
            };
            let q = random_boolean_instance(&h, &cfg, seed % 2 == 0);
            let oracle = !solve_faq_brute_force(&q).total().is_zero();
            assert_eq!(
                solve_bcq(&q),
                oracle,
                "{name} engine vs oracle, seed {seed}"
            );
            for g in &topologies {
                let a = Assignment::round_robin(&q, g, &all_player_ids(g));
                let out = run_bcq_protocol(&q, g, &a, 1)
                    .unwrap_or_else(|e| panic!("{name} on {}: {e}", g.name()));
                assert_eq!(out.answer, oracle, "{name} on {} seed {seed}", g.name());
            }
        }
    }
}

#[test]
fn counting_and_probability_semirings_distribute_correctly() {
    for seed in 0..3u64 {
        let h = example_h2();
        let cfg = RandomInstanceConfig {
            tuples_per_factor: 6,
            domain: 3,
            seed,
        };
        // Counting.
        let qc: FaqQuery<Count> =
            random_instance(&h, &cfg, vec![], |r| Count(r.random_range(1..5)));
        let g = Topology::grid(2, 2);
        let a = Assignment::round_robin(&qc, &g, &all_player_ids(&g));
        let out = run_faq_protocol(&qc, &g, &a, 1).unwrap();
        assert_eq!(out.answer.total(), solve_faq_brute_force(&qc).total());

        // Probability with a free edge (factor marginal).
        let free = h.edge(faqs::hypergraph::EdgeId(0)).to_vec();
        let qp: FaqQuery<Prob> =
            random_instance(&h, &cfg, free, |r| Prob(r.random_range(0.1..1.0)));
        let a2 = Assignment::round_robin(&qp, &g, &all_player_ids(&g));
        let out2 = run_faq_protocol(&qp, &g, &a2, 1).unwrap();
        assert!(out2.answer.approx_eq(&solve_faq_brute_force(&qp)));
    }
}

#[test]
fn example_2_1_round_complexity_shape() {
    // q0() :- R(A),S(A),T(A),U(A) on the line: N + O(1) rounds, ~3x
    // cheaper than the trivial protocol's 3N + O(1) (Example 2.1).
    let n = 128u32;
    let h = example_h0();
    let mut b = BcqBuilder::new(&h, 2 * n as usize);
    for e in 0..4 {
        b.relation_from_values(e, (0..n).map(move |x| (x * (e as u32 + 1)) % (2 * n)));
    }
    let q = b.finish();
    let g = Topology::line(4);
    let a = Assignment::round_robin(&q, &g, &[0, 1, 2, 3]).with_output(Player(3));
    let smart = run_bcq_protocol(&q, &g, &a, 1).unwrap();
    let trivial = run_trivial(
        &q,
        &g.clone()
            .with_uniform_capacity(faqs::protocols::model_capacity_bits(&q)),
        &a,
    )
    .unwrap();
    assert_eq!(smart.answer, !trivial.answer.total().is_zero());
    assert!(
        smart.rounds <= 2 * n as u64 + 16,
        "semijoin chain ≈ N: {}",
        smart.rounds
    );
    assert!(
        trivial.rounds >= 2 * smart.rounds,
        "trivial {} ≫ smart {}",
        trivial.rounds,
        smart.rounds
    );
}

#[test]
fn example_2_3_clique_speedup_is_about_half() {
    let n = 256u32;
    let h = example_h1();
    let mut b = BcqBuilder::new(&h, n as usize);
    for e in 0..4 {
        b.relation_from_pairs(e, (0..n).map(|x| (x, 0)));
    }
    let q = b.finish();
    let run = |g: &Topology| {
        let a = Assignment::round_robin(&q, g, &[0, 1, 2, 3]).with_output(Player(1));
        run_bcq_protocol(&q, g, &a, 1).unwrap().rounds
    };
    let line = run(&Topology::line(4));
    let clique = run(&Topology::clique(4));
    let ratio = line as f64 / clique as f64;
    assert!(
        (1.6..=3.0).contains(&ratio),
        "clique speedup ≈ 2 (two Steiner paths): line {line} / clique {clique} = {ratio:.2}"
    );
}

#[test]
fn hard_instances_respect_the_certified_lower_bound() {
    // Embed TRIBES into the star, place the relations across the min
    // cut (Lemma 4.4), and verify the measured rounds of our best
    // protocol sit above the certified Ω(m·N/MinCut) line (up to the
    // protocol's small constants).
    let n_universe = 128u32;
    let h = example_h1();
    let tribes = Tribes::random(forest_capacity(&h), n_universe, 0.5, true, 21);
    let e = embed_forest(&h, &tribes).expect("star hosts one pair");
    let g = Topology::line(4);
    let k: Vec<Player> = (0..4u32).map(Player).collect();
    let a = hard_assignment(&e, &g, &k);
    let out = run_bcq_protocol(&e.query, &g, &a, 1).unwrap();
    assert_eq!(out.answer, tribes.eval());

    let lb = bcq_lower_bound(&e.query.hypergraph, &g, &k, e.query.n_max() as u64);
    assert!(
        4 * out.rounds >= lb.rounds,
        "measured {} must sit above the certified bound {} (mod constants)",
        out.rounds,
        lb.rounds
    );
}

#[test]
fn hard_instances_move_omega_mn_bits_across_the_cut() {
    // Model 2.2's view: the two-party simulation across a min cut must
    // see Ω(m·N) bits on TRIBES-hard instances (Theorem 2.3). Measure
    // the actual cross-cut traffic of our protocol.
    use faqs::network::min_cut_partition;
    use faqs::protocols::run_bcq_protocol_with_cut;
    let h = tree_query(2, 2);
    let m = forest_capacity(&h) as u64;
    let n_universe = 128u32;
    let tribes = Tribes::random(m as usize, n_universe, 0.9, true, 77);
    let e = embed_forest(&h, &tribes).unwrap();
    let g = Topology::line(6);
    let k: Vec<Player> = (0..6u32).map(Player).collect();
    let a = hard_assignment(&e, &g, &k);
    let (_, side) = min_cut_partition(&g, &k);
    let (out, cut_bits) = run_bcq_protocol_with_cut(&e.query, &g, &a, 1, &side).unwrap();
    assert_eq!(out.answer, tribes.eval());
    // Each of the m pairs forces ≈ N set elements across the cut; one
    // element costs ⌈log₂ D⌉ bits. Allow the protocol's constants.
    let log_d = 64 - (e.query.domain as u64 - 1).leading_zeros() as u64;
    assert!(
        cut_bits >= m * (n_universe as u64) * log_d / 4,
        "cut traffic {cut_bits} must be Ω(m·N·log D) = Ω({})",
        m * n_universe as u64 * log_d
    );
}

#[test]
fn cyclic_core_hard_instance_roundtrip() {
    let h = cycle_query(5);
    let tribes = Tribes::random(1, 64, 0.4, false, 23);
    let e = embed_core(&h, &tribes).expect("cycle hosts one pair");
    assert_eq!(solve_bcq(&e.query), tribes.eval());
    let g = Topology::barbell(3, 1);
    let k: Vec<Player> = (0..6u32).map(Player).collect();
    let a = hard_assignment(&e, &g, &k);
    let out = run_bcq_protocol(&e.query, &g, &a, 1).unwrap();
    assert_eq!(out.answer, tribes.eval());
}

#[test]
fn table1_row_bcq_upper_vs_lower_gap_is_small_for_constant_d() {
    // Table 1 row 3: BCQ on arbitrary G with (d, 2): gap Õ(d). For a
    // d = 1 forest the measured/lower ratio must be a small constant.
    let n = 256;
    let h = tree_query(2, 2);
    let cfg = RandomInstanceConfig {
        tuples_per_factor: n,
        domain: 512,
        seed: 31,
    };
    let q = random_boolean_instance(&h, &cfg, true);
    for g in [Topology::line(6), Topology::clique(6)] {
        let ids = all_player_ids(&g);
        let a = Assignment::round_robin(&q, &g, &ids);
        let out = run_bcq_protocol(&q, &g, &a, 1).unwrap();
        let lb = bcq_lower_bound(&q.hypergraph, &g, &a.players(), n as u64);
        let bounds = BoundReport::evaluate(&q, &g, &a.players());
        assert!(
            out.rounds >= lb.rounds / 8,
            "{}:{} vs {}",
            g.name(),
            out.rounds,
            lb.rounds
        );
        assert!(
            out.rounds <= 8 * bounds.upper_rounds + 64,
            "{}: measured {} vs UB {}",
            g.name(),
            out.rounds,
            bounds.upper_rounds
        );
    }
}

#[test]
fn mcm_upper_meets_lower_bound_shape() {
    // Table 1 row 5 / Theorem 6.4: sequential is Θ(kN) and the lower
    // bound is Ω(kN); they differ by a small constant.
    for (n, k) in [(32usize, 4usize), (64, 8), (48, 16)] {
        let p = McmProblem::random(n, k, 1, 77);
        let out = sequential_protocol(&p);
        let lb = mcm_lower_bound(k as u64, n as u64, 1);
        assert_eq!(out.y, p.expected());
        assert!(out.rounds >= lb, "measured {} ≥ Ω(kN) = {lb}", out.rounds);
        assert!(out.rounds <= 3 * lb, "within 3x of the bound");
    }
}

#[test]
fn mcm_merge_crossover_matches_appendix_i1() {
    // k ≤ N: sequential wins. k ≫ N log k: merge wins.
    let small_k = McmProblem::random(48, 8, 1, 5);
    assert!(sequential_protocol(&small_k).rounds < merge_protocol(&small_k).rounds);
    let big_k = McmProblem::random(8, 256, 1, 5);
    assert!(merge_protocol(&big_k).rounds < sequential_protocol(&big_k).rounds);
    // Trivial loses everywhere interesting.
    assert!(trivial_protocol(&small_k).rounds > sequential_protocol(&small_k).rounds);
}

#[test]
fn min_cut_governs_hard_instance_cost() {
    // The same query + instance is cheap on a clique and expensive
    // across a bridge: the MinCut dependence of Theorem 4.1.
    let n = 192;
    let h = star_query(4);
    let cfg = RandomInstanceConfig {
        tuples_per_factor: n,
        domain: 256,
        seed: 41,
    };
    let q = random_boolean_instance(&h, &cfg, true);

    let clique = Topology::clique(6);
    let barbell = Topology::barbell(3, 1);
    let a_clique = Assignment::new(vec![Player(0), Player(1), Player(4), Player(5)], Player(5));
    let a_barbell = a_clique.clone();
    let fast = run_bcq_protocol(&q, &clique, &a_clique, 1).unwrap();
    let slow = run_bcq_protocol(&q, &barbell, &a_barbell, 1).unwrap();
    assert_eq!(fast.answer, slow.answer);
    assert!(
        slow.rounds > fast.rounds,
        "bridge bottleneck: {} vs {}",
        slow.rounds,
        fast.rounds
    );
}

#[test]
fn engine_solves_what_protocols_solve_identically_on_h3() {
    // H3 mixes a cyclic core with a removed forest: the protocol peels
    // the forest and ships the core; answers must match the engine on
    // both satisfiable and unsatisfiable instances.
    let h = example_h3();
    for seed in 0..6u64 {
        let cfg = RandomInstanceConfig {
            tuples_per_factor: 6,
            domain: 3,
            seed,
        };
        let q = random_boolean_instance(&h, &cfg, seed % 2 == 0);
        let g = Topology::random_connected(7, 0.3, seed);
        let a = Assignment::round_robin(&q, &g, &all_player_ids(&g));
        let out = run_bcq_protocol(&q, &g, &a, 1).unwrap();
        assert_eq!(out.answer, solve_bcq(&q), "seed {seed}");
    }
}

#[test]
fn faq_with_max_aggregate_via_engine() {
    // Lattice aggregates run through the centralized engine (the
    // distributed path rejects them explicitly).
    use faqs::engine::solve_faq_lattice;
    let h = star_query(3);
    let cfg = RandomInstanceConfig {
        tuples_per_factor: 8,
        domain: 4,
        seed: 51,
    };
    let q: FaqQuery<Count> = random_instance(&h, &cfg, vec![], |r| Count(r.random_range(1..9)))
        .with_aggregate(faqs::hypergraph::Var(1), Aggregate::Max)
        .with_aggregate(faqs::hypergraph::Var(3), Aggregate::Max);
    let fast = solve_faq_lattice(&q).unwrap().total();
    let slow = faqs::engine::solve_faq_brute_force_lattice(&q).total();
    assert_eq!(fast, slow);

    let g = Topology::line(3);
    let a = Assignment::round_robin(&q, &g, &[0, 1, 2]);
    assert!(run_faq_protocol(&q, &g, &a, 1).is_err(), "clean rejection");
}

#[test]
fn trivial_protocol_always_agrees() {
    for seed in 0..4u64 {
        let h = clique_query(4);
        let cfg = RandomInstanceConfig {
            tuples_per_factor: 8,
            domain: 4,
            seed,
        };
        let q = random_boolean_instance(&h, &cfg, seed % 2 == 1);
        let g = Topology::ring(5).with_uniform_capacity(16);
        let a = Assignment::round_robin(&q, &g, &all_player_ids(&g));
        let smart = run_bcq_protocol(&q, &g, &a, 1).unwrap();
        let trivial = run_trivial(&q, &g, &a).unwrap();
        assert_eq!(
            smart.answer,
            !trivial.answer.total().is_zero(),
            "seed {seed}"
        );
    }
}

#[test]
fn solve_faq_matches_across_assignment_layouts() {
    // Worst-case vs concentrated vs round-robin all compute the same
    // function; only the round counts differ.
    let h = example_h2();
    let cfg = RandomInstanceConfig {
        tuples_per_factor: 10,
        domain: 4,
        seed: 61,
    };
    let q = random_boolean_instance(&h, &cfg, true);
    let g = Topology::line(4);
    let expected = solve_bcq(&q);

    let layouts = [
        Assignment::round_robin(&q, &g, &[0, 1, 2, 3]),
        Assignment::concentrated(&q, Player(2)),
        Assignment::new(vec![Player(0), Player(0), Player(3), Player(3)], Player(3)),
    ];
    let mut rounds = Vec::new();
    for a in layouts {
        let out = run_bcq_protocol(&q, &g, &a, 1).unwrap();
        assert_eq!(out.answer, expected);
        rounds.push(out.rounds);
    }
    assert_eq!(rounds[1], 0, "concentrated layout is free");
    assert!(rounds[0] > 0 && rounds[2] > 0);
}

#[test]
fn distributed_runtime_matches_every_other_strategy() {
    // The topology-general runtime against the specialised protocol,
    // the engine and the oracle, on the same instance and topology —
    // the full strategy lattice through the facade.
    let h = star_query(4);
    let cfg = RandomInstanceConfig {
        tuples_per_factor: 12,
        domain: 8,
        seed: 81,
    };
    let q = random_boolean_instance(&h, &cfg, true);
    let expected = !solve_faq_brute_force(&q).total().is_zero();
    assert_eq!(solve_bcq(&q), expected);

    for g in [Topology::line(4), Topology::clique(4), Topology::grid(2, 2)] {
        let a = Assignment::round_robin(&q, &g, &all_player_ids(&g));
        let protocol = run_bcq_protocol(&q, &g, &a, 1).unwrap();
        assert_eq!(protocol.answer, expected, "specialised on {}", g.name());

        let players: Vec<Player> = g.players().collect();
        for placement in [
            InputPlacement::from_assignment(&a),
            InputPlacement::hash_split(q.k(), &players, a.output()),
        ] {
            let run = DistributedFaqRun::new(&q, &g, placement, 1).unwrap();
            let out = run.execute().unwrap();
            assert_eq!(
                !out.result.total().is_zero(),
                expected,
                "general runtime on {}",
                g.name()
            );
            assert!(
                run.conformance(out.stats).within_upper(),
                "bit envelope on {}",
                g.name()
            );
        }
    }
}

#[test]
fn engine_free_vars_match_solve_faq_for_pgm_style_queries() {
    let h = path_query(4);
    let cfg = RandomInstanceConfig {
        tuples_per_factor: 9,
        domain: 3,
        seed: 71,
    };
    for v in 0..5u32 {
        let q: FaqQuery<Prob> = random_instance(&h, &cfg, vec![faqs::hypergraph::Var(v)], |r| {
            Prob(r.random_range(0.1..1.0))
        });
        let fast = solve_faq(&q).unwrap();
        let slow = solve_faq_brute_force(&q);
        assert!(fast.approx_eq(&slow), "marginal of x{v}");
    }
}
