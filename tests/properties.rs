//! Property-based integration tests: the structural invariants and the
//! protocol/engine/oracle agreement on randomly generated inputs.

use faqs::engine::{solve_bcq, solve_faq_brute_force};
use faqs::hypergraph::{
    internal_node_width, is_acyclic, random_degenerate_query, Decomposition, Ghd, Hypergraph, Var,
};
use faqs::lowerbounds::{embed_forest, forest_capacity, Tribes};
use faqs::network::{min_cut, min_cut_partition, steiner_packing, Assignment, Player, Topology};
use faqs::protocols::run_bcq_protocol;
use faqs::relation::{random_boolean_instance, RandomInstanceConfig};
use faqs::semiring::Semiring;
use proptest::prelude::*;

/// A random forest query: a uniformly random parent for every non-root
/// vertex, at most one tree.
fn forest_strategy() -> impl Strategy<Value = Hypergraph> {
    (3usize..10, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = Hypergraph::new(n);
        for i in 1..n {
            let p = rng.random_range(0..i);
            h.add_edge([Var(p as u32), Var(i as u32)]);
        }
        h
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gyo_ghd_is_always_valid(n in 3usize..9, d in 1usize..4, seed: u64) {
        let h = random_degenerate_query(n, d, seed);
        let report = internal_node_width(&h);
        prop_assert!(report.ghd.validate(&h).is_ok());
        prop_assert!(report.y >= 1);
        // Re-deriving from the decomposition stays valid too.
        let g2 = Ghd::from_decomposition(&h, &report.decomposition);
        prop_assert!(g2.validate(&h).is_ok());
    }

    #[test]
    fn forests_are_acyclic_and_width_bounded(h in forest_strategy()) {
        prop_assert!(is_acyclic(&h));
        let report = internal_node_width(&h);
        // y(H) never exceeds the number of edges.
        prop_assert!(report.y <= h.num_edges());
        // The decomposition of an acyclic H has an empty GYO reduction.
        let d = Decomposition::of(&h);
        prop_assert!(d.core_edges.is_empty());
    }

    #[test]
    fn forest_embedding_equivalence(h in forest_strategy(), seed: u64, planted: bool) {
        let cap = forest_capacity(&h);
        prop_assume!(cap >= 1);
        let tribes = Tribes::random(cap, 10, 0.3, planted, seed);
        let e = embed_forest(&h, &tribes).expect("capacity checked");
        prop_assert_eq!(solve_bcq(&e.query), tribes.eval());
    }

    #[test]
    fn protocol_matches_oracle_on_random_everything(
        n in 4usize..8,
        d in 1usize..3,
        hseed: u64,
        iseed: u64,
        planted: bool,
    ) {
        let h = random_degenerate_query(n, d, hseed);
        let cfg = RandomInstanceConfig { tuples_per_factor: 4, domain: 3, seed: iseed };
        let q = random_boolean_instance(&h, &cfg, planted);
        let oracle = !solve_faq_brute_force(&q).total().is_zero();

        let g = Topology::random_connected(5, 0.3, hseed ^ iseed);
        let ids: Vec<u32> = (0..5).collect();
        let a = Assignment::round_robin(&q, &g, &ids);
        let out = run_bcq_protocol(&q, &g, &a, 1).unwrap();
        prop_assert_eq!(out.answer, oracle);
    }

    #[test]
    fn steiner_packing_is_always_edge_disjoint_and_valid(
        nodes in 4usize..10,
        p in 0.2f64..0.8,
        seed: u64,
        delta in 2u32..8,
    ) {
        let g = Topology::random_connected(nodes, p, seed);
        let k: Vec<Player> = vec![Player(0), Player(nodes as u32 - 1)];
        let packing = steiner_packing(&g, &k, delta);
        let mut seen = std::collections::BTreeSet::new();
        for tree in &packing {
            prop_assert!(tree.is_valid_for(&g, &k));
            prop_assert!(tree.terminal_diameter(&k) <= delta);
            for l in tree.links() {
                prop_assert!(seen.insert(*l), "edge reused across trees");
            }
        }
        // Never more trees than the min cut allows.
        prop_assert!(packing.len() <= min_cut(&g, &k));
    }

    #[test]
    fn min_cut_partition_is_consistent(nodes in 4usize..10, p in 0.2f64..0.8, seed: u64) {
        let g = Topology::random_connected(nodes, p, seed);
        let k: Vec<Player> = vec![Player(0), Player(nodes as u32 - 1), Player(1)];
        let (cut, side) = min_cut_partition(&g, &k);
        prop_assert_eq!(cut, min_cut(&g, &k));
        let crossing = g
            .links()
            .filter(|&l| {
                let (a, b) = g.link(l);
                side[a.index()] != side[b.index()]
            })
            .count();
        prop_assert_eq!(crossing, cut);
    }

    #[test]
    fn width_report_is_stable_under_clone(n in 3usize..8, d in 1usize..3, seed: u64) {
        let h = random_degenerate_query(n, d, seed);
        let a = internal_node_width(&h);
        let b = internal_node_width(&h.clone());
        prop_assert_eq!(a.y, b.y);
        prop_assert_eq!(a.n2(), b.n2());
    }
}
